// Package core implements the paper's contribution: system-level,
// unified in-band and out-of-band dynamic thermal control.
//
// The pieces map onto the paper's §3 as follows:
//
//   - the two-level temperature history lives in core/window;
//   - the thermal control array and its Pp-driven fill in core/ctlarray;
//   - this package supplies the Actuator abstraction that unifies the
//     techniques (fan duty over sysfs or IPMI, DVFS over cpufreq), the
//     Controller that drives any set of actuators from one temperature
//     stream and one policy parameter, and the TDVFS daemon
//     (threshold-gated frequency scaling, §4.3).
//
// Controllers touch the hardware only through small port interfaces
// (TempReader, FanPort, FreqPort), each with an in-band (virtual sysfs)
// and an out-of-band (IPMI) implementation, so the same control law runs
// over either path — the unification the paper's title claims.
package core

import (
	"fmt"
	"math"

	"thermctl/internal/cpufreq"
	"thermctl/internal/hwmon"
	"thermctl/internal/ipmi"
)

// TempReader returns one temperature sample in °C.
type TempReader func() (float64, error)

// SysfsTemp reads an hwmon temp*_input attribute (millidegrees) —
// the in-band path, equivalent to lm-sensors.
func SysfsTemp(fs *hwmon.FS, path string) TempReader {
	return func() (float64, error) {
		v, err := fs.ReadInt(path)
		if err != nil {
			return 0, err
		}
		return float64(v) / 1000, nil
	}
}

// IPMITemp reads a BMC sensor — the out-of-band path.
func IPMITemp(c *ipmi.Client, sensorNum uint8) TempReader {
	return func() (float64, error) { return c.ReadSensor(sensorNum) }
}

// FanPort commands a fan's PWM duty in percent.
type FanPort interface {
	SetDutyPercent(p float64) error
	DutyPercent() (float64, error)
}

// SysfsFanPort drives pwm1 through the virtual sysfs (in-band). It
// flips pwm1_enable to manual on first use.
type SysfsFanPort struct {
	FS   *hwmon.FS
	Chip hwmon.Chip

	armed bool
}

// SetDutyPercent implements FanPort.
//
//thermlint:unit d=percent
func (p *SysfsFanPort) SetDutyPercent(d float64) error {
	if !p.armed {
		if err := p.FS.WriteInt(p.Chip.PWMEnable, hwmon.PWMEnableManual); err != nil {
			return err
		}
		p.armed = true
	}
	return p.FS.WriteInt(p.Chip.PWM, dutyToPWMReg(d))
}

// DutyPercent implements FanPort.
//
//thermlint:unit percent
func (p *SysfsFanPort) DutyPercent() (float64, error) {
	v, err := p.FS.ReadInt(p.Chip.PWM)
	if err != nil {
		return 0, err
	}
	return float64(v) * 100 / 255, nil
}

// dutyToPWMReg converts a duty percentage to the hwmon pwm1 register
// count, clamped to the register's 0..255 range.
//
//thermlint:unit d=percent
//thermlint:unit duty8
func dutyToPWMReg(d float64) int64 {
	if d <= 0 {
		return 0
	}
	if d >= 100 {
		return 255
	}
	return int64(math.Round(d * 255 / 100))
}

// IPMIFanPort drives the fan through the BMC (out-of-band). It switches
// the BMC to manual fan mode on first use.
type IPMIFanPort struct {
	C *ipmi.Client

	armed bool
}

// SetDutyPercent implements FanPort.
func (p *IPMIFanPort) SetDutyPercent(d float64) error {
	if !p.armed {
		if err := p.C.SetFanManual(true); err != nil {
			return err
		}
		p.armed = true
	}
	return p.C.SetFanDuty(d)
}

// DutyPercent implements FanPort.
func (p *IPMIFanPort) DutyPercent() (float64, error) { return p.C.FanDuty() }

// FreqPort commands a CPU frequency in kHz.
type FreqPort interface {
	AvailableKHz() ([]int64, error)
	SetKHz(f int64) error
	CurrentKHz() (int64, error)
}

// SysfsFreqPort drives cpufreq through the virtual sysfs.
type SysfsFreqPort struct {
	FS    *hwmon.FS
	Paths cpufreq.Paths

	// avail caches the parsed frequency table: the set of available
	// frequencies of a CPU is static, and policies may ask for it on
	// every decision.
	avail []int64
}

// AvailableKHz implements FreqPort. The table is read and parsed once,
// then served from the cache; the returned slice is shared and must be
// treated as read-only.
//
//thermlint:unit kHz
func (p *SysfsFreqPort) AvailableKHz() ([]int64, error) {
	if p.avail != nil {
		return p.avail, nil
	}
	body, err := p.FS.ReadFile(p.Paths.AvailableFreqs)
	if err != nil {
		return nil, err
	}
	freqs, err := cpufreq.ParseAvailable(body)
	if err != nil {
		return nil, err
	}
	p.avail = freqs
	return p.avail, nil
}

// SetKHz implements FreqPort.
//
//thermlint:unit f=kHz
func (p *SysfsFreqPort) SetKHz(f int64) error {
	return p.FS.WriteInt(p.Paths.SetSpeed, f)
}

// CurrentKHz implements FreqPort.
//
//thermlint:unit kHz
func (p *SysfsFreqPort) CurrentKHz() (int64, error) {
	return p.FS.ReadInt(p.Paths.CurFreq)
}

// Actuator is one thermal control technique unified under the control
// array: physical modes 0..NumModes()-1 in ascending order of
// temperature-control effectiveness.
type Actuator interface {
	// Name identifies the technique in logs ("fan", "dvfs").
	Name() string
	// NumModes returns the count of physically available modes.
	NumModes() int
	// Apply actuates physical mode m (clamped by the caller).
	Apply(m int) error
	// Current returns the mode closest to the device's present state.
	Current() (int, error)
}

// FanActuator discretizes a fan's continuous duty range into modes, as
// the paper's driver discretizes its fan into 100 distinct speeds. Mode
// 0 is MinDuty (least effective), mode NumModes-1 is MaxDuty.
type FanActuator struct {
	Port    FanPort
	Modes   int     // number of discrete speeds (paper: 100)
	MinDuty float64 // duty at mode 0, percent (paper: 1%)
	MaxDuty float64 // duty at the top mode — the experiment's max-PWM cap
}

// NewFanActuator returns a fan actuator with the paper's defaults:
// 100 modes from 1% up to maxDuty.
func NewFanActuator(port FanPort, maxDuty float64) *FanActuator {
	return &FanActuator{Port: port, Modes: 100, MinDuty: 1, MaxDuty: maxDuty}
}

// Name implements Actuator.
func (f *FanActuator) Name() string { return "fan" }

// NumModes implements Actuator.
func (f *FanActuator) NumModes() int { return f.Modes }

// DutyForMode returns the duty in percent commanded by mode m.
//
//thermlint:unit percent
func (f *FanActuator) DutyForMode(m int) float64 {
	if f.Modes <= 1 {
		return f.MaxDuty
	}
	if m < 0 {
		m = 0
	}
	if m >= f.Modes {
		m = f.Modes - 1
	}
	return f.MinDuty + float64(m)*(f.MaxDuty-f.MinDuty)/float64(f.Modes-1)
}

// Apply implements Actuator.
func (f *FanActuator) Apply(m int) error {
	return f.Port.SetDutyPercent(f.DutyForMode(m))
}

// Current implements Actuator.
func (f *FanActuator) Current() (int, error) {
	d, err := f.Port.DutyPercent()
	if err != nil {
		return 0, err
	}
	if f.Modes <= 1 || f.MaxDuty <= f.MinDuty {
		return 0, nil
	}
	m := int(math.Round((d - f.MinDuty) / (f.MaxDuty - f.MinDuty) * float64(f.Modes-1)))
	if m < 0 {
		m = 0
	}
	if m >= f.Modes {
		m = f.Modes - 1
	}
	return m, nil
}

// DVFSActuator exposes the P-state table as modes: mode 0 is the
// highest frequency (least effective at cooling), the last mode the
// lowest frequency.
type DVFSActuator struct {
	Port FreqPort
	// freqs is the P-state table, descending.
	//thermlint:unit kHz
	freqs []int64
}

// NewDVFSActuator probes the port's frequency table.
func NewDVFSActuator(port FreqPort) (*DVFSActuator, error) {
	freqs, err := port.AvailableKHz()
	if err != nil {
		return nil, fmt.Errorf("core: dvfs actuator: %w", err)
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("core: dvfs actuator: empty frequency table")
	}
	return &DVFSActuator{Port: port, freqs: freqs}, nil
}

// Name implements Actuator.
func (d *DVFSActuator) Name() string { return "dvfs" }

// NumModes implements Actuator.
func (d *DVFSActuator) NumModes() int { return len(d.freqs) }

// FreqForMode returns the frequency (kHz) of mode m, clamped.
//
//thermlint:unit kHz
func (d *DVFSActuator) FreqForMode(m int) int64 {
	if m < 0 {
		m = 0
	}
	if m >= len(d.freqs) {
		m = len(d.freqs) - 1
	}
	return d.freqs[m]
}

// Apply implements Actuator.
func (d *DVFSActuator) Apply(m int) error {
	return d.Port.SetKHz(d.FreqForMode(m))
}

// Current implements Actuator.
func (d *DVFSActuator) Current() (int, error) {
	cur, err := d.Port.CurrentKHz()
	if err != nil {
		return 0, err
	}
	for i, f := range d.freqs {
		if f == cur {
			return i, nil
		}
	}
	// Unknown frequency: report the nearest mode.
	best, bestDiff := 0, int64(math.MaxInt64)
	for i, f := range d.freqs {
		diff := f - cur
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = i, diff
		}
	}
	return best, nil
}
