package core

import (
	"fmt"
	"time"

	"thermctl/internal/core/window"
)

// Config parameterizes the unified controller.
type Config struct {
	// Pp is the user policy parameter in [1, 100]: small = aggressive
	// temperature-oriented control, large = conservative cost-oriented
	// control.
	Pp int
	// TminC and TmaxC bound the safe operating temperature range used
	// in the index-update coefficient c = (N-1)/(Tmax-Tmin). The
	// paper's platform uses 38 and 82 °C.
	TminC, TmaxC float64
	// SamplePeriod is the temperature sampling interval (paper: 250 ms,
	// i.e. four samples per second).
	SamplePeriod time.Duration
	// Window sizes the two-level history (defaults: 4 and 5).
	Window window.Config
	// FailSafe parameterizes the consecutive-error escalation policy;
	// zero fields take the defaults (see FailSafeConfig).
	FailSafe FailSafeConfig
	// MaxLeadC bounds how far (in °C-equivalent cells) the integrated
	// index may run ahead of or behind the absolute-temperature anchor
	// c·(T−Tmin). The index update is an integrator: on a large load
	// step the temperature keeps rising for tens of seconds after each
	// duty increase (the heatsink is slow), so pure integration winds
	// the index to the array's end and pins the fan at maximum. The
	// lead band keeps the controller proactive — it may run MaxLeadC
	// degrees ahead of the static map — without unbounded windup.
	// Default 7 °C.
	MaxLeadC float64
}

// DefaultConfig returns the paper's controller parameters with the
// given policy.
func DefaultConfig(pp int) Config {
	return Config{
		Pp:           pp,
		TminC:        38,
		TmaxC:        82,
		SamplePeriod: 250 * time.Millisecond,
		Window:       window.Default(),
		FailSafe:     DefaultFailSafeConfig(),
		MaxLeadC:     7,
	}
}

// withDefaults fills zero fields, mirroring the historical NewController
// normalization.
func (cfg Config) withDefaults() Config {
	if cfg.Window.L1Size == 0 {
		cfg.Window = window.Default()
	}
	if cfg.MaxLeadC == 0 {
		cfg.MaxLeadC = 7
	}
	cfg.FailSafe = cfg.FailSafe.withDefaults()
	return cfg
}

// validate rejects unusable ranges.
func (cfg Config) validate() error {
	if cfg.TmaxC <= cfg.TminC {
		return fmt.Errorf("core: Tmax %v must exceed Tmin %v", cfg.TmaxC, cfg.TminC)
	}
	if cfg.SamplePeriod <= 0 {
		return fmt.Errorf("core: non-positive sample period")
	}
	return nil
}

// Controller is the unified dynamic thermal controller of §3.2: one
// temperature stream, one two-level history window, one policy
// parameter, any number of actuators. Since the control-plane
// unification it is a facade over the engine — a Binding hosting the
// CtlArrayPolicy — kept for its stable constructor and observability
// surface. It implements the cluster Controller interface via OnStep.
type Controller struct {
	cfg Config
	b   *Binding
	pol *CtlArrayPolicy
}

// ActuatorBinding attaches an actuator with an explicit array bound N;
// N = 0 picks a default (NumModes for rich mode sets, 2×NumModes for
// sparse ones, so index arithmetic has resolution).
type ActuatorBinding struct {
	Actuator Actuator
	N        int
}

// NewController builds a controller over the given actuators.
func NewController(cfg Config, read TempReader, bindings ...ActuatorBinding) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if read == nil {
		return nil, fmt.Errorf("core: nil temperature reader")
	}
	if len(bindings) == 0 {
		return nil, fmt.Errorf("core: controller needs at least one actuator")
	}
	cfg = cfg.withDefaults()
	pol, err := NewCtlArrayPolicy(cfg, bindings...)
	if err != nil {
		return nil, err
	}
	acts := make([]Actuator, len(bindings))
	for i, bd := range bindings {
		acts[i] = bd.Actuator
	}
	win := cfg.Window
	b, err := NewBinding(BindingConfig{
		Policy:       pol,
		Read:         read,
		SamplePeriod: cfg.SamplePeriod,
		Window:       &win,
		FailSafe:     cfg.FailSafe,
		Actuators:    acts,
	})
	if err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg, b: b, pol: pol}, nil
}

// Binding exposes the engine binding hosting this controller, for
// composition into an Engine (the hybrid coordinator does this).
func (c *Controller) Binding() *Binding { return c.b }

// Policy exposes the hosted ctlarray policy.
func (c *Controller) Policy() *CtlArrayPolicy { return c.pol }

// Window exposes the controller's history window (read-only use:
// classification, diagnostics).
func (c *Controller) Window() *window.Window { return c.b.Window() }

// Errors returns the count of failed sensor reads or actuations. Safe
// to call concurrently with the control loop.
func (c *Controller) Errors() uint64 { return c.b.Errors() }

// FailSafe reports whether the fail-safe escalation is currently
// holding every actuator at its most effective mode.
func (c *Controller) FailSafe() bool { return c.b.FailSafe() }

// FailSafeEvents returns a copy of the escalation/recovery event log.
func (c *Controller) FailSafeEvents() []FailSafeEvent { return c.b.FailSafeEvents() }

// Moves returns the number of mode changes applied to actuator i.
func (c *Controller) Moves(i int) uint64 { return c.b.Moves(i) }

// Index returns the current control-array index of actuator i.
func (c *Controller) Index(i int) int { return c.pol.Index(i) }

// ActuatorStatus is one actuator's view in a Status snapshot.
type ActuatorStatus struct {
	// Name is the actuator's identifier.
	Name string
	// Index is the current control-array cell index.
	Index int
	// Mode is the physical mode the index selects.
	Mode int
	// Moves counts applied mode changes.
	Moves uint64
}

// Status is a point-in-time observability snapshot of the controller.
type Status struct {
	// Pp is the active policy.
	Pp int
	// AvgC is the latest round-average temperature (NaN before the
	// first round).
	AvgC float64
	// DeltaL1 and DeltaL2 are the window's current short/long-horizon
	// variations.
	DeltaL1, DeltaL2 float64
	// Behavior classifies the last round.
	Behavior string
	// HoldFloor reports whether downward moves are being suppressed.
	HoldFloor bool
	// FailSafe reports whether the consecutive-error escalation is
	// holding every actuator at its most effective mode.
	FailSafe bool
	// Errors is the cumulative error count.
	Errors uint64
	// Actuators lists per-actuator state.
	Actuators []ActuatorStatus
}

// Status returns an observability snapshot, for daemons' status
// endpoints and logs.
func (c *Controller) Status() Status {
	win := c.b.Window()
	st := Status{
		Pp:        c.cfg.Pp,
		AvgC:      win.Avg(),
		DeltaL1:   win.DeltaL1(),
		DeltaL2:   win.DeltaL2(),
		Behavior:  win.Classify(window.DefaultClassify()).String(),
		HoldFloor: c.pol.HoldFloor(),
		FailSafe:  c.b.FailSafe(),
		Errors:    c.b.Errors(),
	}
	for i := range c.pol.slots {
		st.Actuators = append(st.Actuators, ActuatorStatus{
			Name:  c.b.Actuator(i).Name(),
			Index: c.pol.Index(i),
			Mode:  c.pol.Mode(i),
			Moves: c.b.Moves(i),
		})
	}
	return st
}

// String renders the snapshot as a single log line.
func (s Status) String() string {
	out := fmt.Sprintf("pp=%d avg=%.2fC dL1=%.2f dL2=%.2f behavior=%s hold=%v errs=%d",
		s.Pp, s.AvgC, s.DeltaL1, s.DeltaL2, s.Behavior, s.HoldFloor, s.Errors)
	if s.FailSafe {
		out += " FAILSAFE"
	}
	for _, a := range s.Actuators {
		out += fmt.Sprintf(" %s[idx=%d mode=%d moves=%d]", a.Name, a.Index, a.Mode, a.Moves)
	}
	return out
}

// SetHoldFloor, while set, blocks index *decreases* (cooling
// reductions); increases stay allowed. The Hybrid coordinator uses it
// to stop the out-of-band knob from relaxing while the in-band knob is
// engaged.
func (c *Controller) SetHoldFloor(hold bool) { c.pol.SetHoldFloor(hold) }

// OnStep samples and, on each completed window round, updates every
// actuator through the hosted ctlarray policy. Call it once per
// simulation step with the current time. Sampling cadence, fail-safe
// degradation and error accounting are the engine's (see
// Binding.OnStep).
func (c *Controller) OnStep(now time.Duration) { c.b.OnStep(now) }
