package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"thermctl/internal/core/ctlarray"
	"thermctl/internal/core/window"
)

// Config parameterizes the unified controller.
type Config struct {
	// Pp is the user policy parameter in [1, 100]: small = aggressive
	// temperature-oriented control, large = conservative cost-oriented
	// control.
	Pp int
	// TminC and TmaxC bound the safe operating temperature range used
	// in the index-update coefficient c = (N-1)/(Tmax-Tmin). The
	// paper's platform uses 38 and 82 °C.
	TminC, TmaxC float64
	// SamplePeriod is the temperature sampling interval (paper: 250 ms,
	// i.e. four samples per second).
	SamplePeriod time.Duration
	// Window sizes the two-level history (defaults: 4 and 5).
	Window window.Config
	// FailSafe parameterizes the consecutive-error escalation policy;
	// zero fields take the defaults (see FailSafeConfig).
	FailSafe FailSafeConfig
	// MaxLeadC bounds how far (in °C-equivalent cells) the integrated
	// index may run ahead of or behind the absolute-temperature anchor
	// c·(T−Tmin). The index update is an integrator: on a large load
	// step the temperature keeps rising for tens of seconds after each
	// duty increase (the heatsink is slow), so pure integration winds
	// the index to the array's end and pins the fan at maximum. The
	// lead band keeps the controller proactive — it may run MaxLeadC
	// degrees ahead of the static map — without unbounded windup.
	// Default 7 °C.
	MaxLeadC float64
}

// DefaultConfig returns the paper's controller parameters with the
// given policy.
func DefaultConfig(pp int) Config {
	return Config{
		Pp:           pp,
		TminC:        38,
		TmaxC:        82,
		SamplePeriod: 250 * time.Millisecond,
		Window:       window.Default(),
		FailSafe:     DefaultFailSafeConfig(),
		MaxLeadC:     7,
	}
}

// boundActuator is one actuator bound to its control array and index.
type boundActuator struct {
	act   Actuator
	arr   *ctlarray.Array
	coef  float64 // c = (N-1)/(Tmax-Tmin)
	idx   int
	moves uint64
	// l2Cooldown throttles level-two (gradual) corrections so a
	// sustained drift is not integrated once per round across the whole
	// FIFO span.
	l2Cooldown int
	// fsRetry marks a fail-safe escalation whose Apply has not yet
	// succeeded; it is retried on every subsequent sample.
	fsRetry bool
}

// Controller is the unified dynamic thermal controller of §3.2: one
// temperature stream, one two-level history window, one policy
// parameter, any number of actuators. It implements the cluster
// Controller interface via OnStep.
type Controller struct {
	cfg       Config
	read      TempReader
	win       *window.Window
	acts      []*boundActuator
	next      time.Duration
	anchor    bool
	holdFloor bool

	// errs is atomic: daemons read Errors()/Status() from their -listen
	// goroutines while OnStep writes from the control loop.
	errs atomic.Uint64

	// fail-safe degradation state (see FailSafeConfig). Read and
	// actuation failures are counted separately: reads fail once per
	// sample, actuations only on rounds that move an index, and a run
	// of either kind must escalate.
	consecReadErrs  int
	consecApplyErrs int
	cleanSamples    int
	failSafe        bool
	fsEvents        []FailSafeEvent
	// mt holds the optional metric handles (see InstrumentMetrics in
	// metrics.go); every handle is nil-safe.
	mt controllerMetrics
}

// ActuatorBinding attaches an actuator with an explicit array bound N;
// N = 0 picks a default (NumModes for rich mode sets, 2×NumModes for
// sparse ones, so index arithmetic has resolution).
type ActuatorBinding struct {
	Actuator Actuator
	N        int
}

// NewController builds a controller over the given actuators.
func NewController(cfg Config, read TempReader, bindings ...ActuatorBinding) (*Controller, error) {
	if cfg.TmaxC <= cfg.TminC {
		return nil, fmt.Errorf("core: Tmax %v must exceed Tmin %v", cfg.TmaxC, cfg.TminC)
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("core: non-positive sample period")
	}
	if cfg.Window.L1Size == 0 {
		cfg.Window = window.Default()
	}
	if cfg.MaxLeadC == 0 {
		cfg.MaxLeadC = 7
	}
	if read == nil {
		return nil, fmt.Errorf("core: nil temperature reader")
	}
	if len(bindings) == 0 {
		return nil, fmt.Errorf("core: controller needs at least one actuator")
	}
	cfg.FailSafe = cfg.FailSafe.withDefaults()
	c := &Controller{
		cfg:  cfg,
		read: read,
		win:  window.New(cfg.Window),
		next: cfg.SamplePeriod,
	}
	for _, b := range bindings {
		m := b.Actuator.NumModes()
		n := b.N
		if n == 0 {
			n = m
			if n < 10 {
				n = 2 * m
			}
		}
		arr, err := ctlarray.New(n, m, cfg.Pp)
		if err != nil {
			return nil, err
		}
		c.acts = append(c.acts, &boundActuator{
			act:  b.Actuator,
			arr:  arr,
			coef: float64(n-1) / (cfg.TmaxC - cfg.TminC),
		})
	}
	return c, nil
}

// Window exposes the controller's history window (read-only use:
// classification, diagnostics).
func (c *Controller) Window() *window.Window { return c.win }

// Errors returns the count of failed sensor reads or actuations. Safe
// to call concurrently with the control loop.
func (c *Controller) Errors() uint64 { return c.errs.Load() }

// FailSafe reports whether the fail-safe escalation is currently
// holding every actuator at its most effective mode.
func (c *Controller) FailSafe() bool { return c.failSafe }

// FailSafeEvents returns a copy of the escalation/recovery event log.
func (c *Controller) FailSafeEvents() []FailSafeEvent {
	out := make([]FailSafeEvent, len(c.fsEvents))
	copy(out, c.fsEvents)
	return out
}

// Moves returns the number of mode changes applied to actuator i.
func (c *Controller) Moves(i int) uint64 { return c.acts[i].moves }

// Index returns the current control-array index of actuator i.
func (c *Controller) Index(i int) int { return c.acts[i].idx }

// ActuatorStatus is one actuator's view in a Status snapshot.
type ActuatorStatus struct {
	// Name is the actuator's identifier.
	Name string
	// Index is the current control-array cell index.
	Index int
	// Mode is the physical mode the index selects.
	Mode int
	// Moves counts applied mode changes.
	Moves uint64
}

// Status is a point-in-time observability snapshot of the controller.
type Status struct {
	// Pp is the active policy.
	Pp int
	// AvgC is the latest round-average temperature (NaN before the
	// first round).
	AvgC float64
	// DeltaL1 and DeltaL2 are the window's current short/long-horizon
	// variations.
	DeltaL1, DeltaL2 float64
	// Behavior classifies the last round.
	Behavior string
	// HoldFloor reports whether downward moves are being suppressed.
	HoldFloor bool
	// FailSafe reports whether the consecutive-error escalation is
	// holding every actuator at its most effective mode.
	FailSafe bool
	// Errors is the cumulative error count.
	Errors uint64
	// Actuators lists per-actuator state.
	Actuators []ActuatorStatus
}

// Status returns an observability snapshot, for daemons' status
// endpoints and logs.
func (c *Controller) Status() Status {
	st := Status{
		Pp:        c.cfg.Pp,
		AvgC:      c.win.Avg(),
		DeltaL1:   c.win.DeltaL1(),
		DeltaL2:   c.win.DeltaL2(),
		Behavior:  c.win.Classify(window.DefaultClassify()).String(),
		HoldFloor: c.holdFloor,
		FailSafe:  c.failSafe,
		Errors:    c.errs.Load(),
	}
	for _, ba := range c.acts {
		st.Actuators = append(st.Actuators, ActuatorStatus{
			Name:  ba.act.Name(),
			Index: ba.idx,
			Mode:  ba.arr.Mode(ba.idx),
			Moves: ba.moves,
		})
	}
	return st
}

// String renders the snapshot as a single log line.
func (s Status) String() string {
	out := fmt.Sprintf("pp=%d avg=%.2fC dL1=%.2f dL2=%.2f behavior=%s hold=%v errs=%d",
		s.Pp, s.AvgC, s.DeltaL1, s.DeltaL2, s.Behavior, s.HoldFloor, s.Errors)
	if s.FailSafe {
		out += " FAILSAFE"
	}
	for _, a := range s.Actuators {
		out += fmt.Sprintf(" %s[idx=%d mode=%d moves=%d]", a.Name, a.Index, a.Mode, a.Moves)
	}
	return out
}

// SetHoldFloor, while set, blocks index *decreases* (cooling
// reductions); increases stay allowed. The Hybrid coordinator uses it
// to stop the out-of-band knob from relaxing while the in-band knob is
// engaged.
func (c *Controller) SetHoldFloor(hold bool) {
	c.holdFloor = hold
	c.mt.holdFloor.SetBool(hold)
}

// OnStep samples and, on each completed window round, updates every
// actuator. Call it once per simulation step with the current time.
//
// Error handling is the fail-safe degradation policy: a failed read (or
// actuation) is counted, and EscalateErrors consecutive failures drive
// every actuator to its most effective mode — a blind controller must
// cool maximally, not skip rounds while the die cooks. The escalation
// releases after RecoverSamples consecutive clean samples, after which
// the history window has fresh data and normal control resumes.
func (c *Controller) OnStep(now time.Duration) {
	if now < c.next {
		return
	}
	c.next += c.cfg.SamplePeriod
	t, err := c.read()
	if err != nil {
		c.errs.Add(1)
		c.mt.errors.Inc()
		c.cleanSamples = 0
		c.consecReadErrs++
		if c.consecReadErrs >= c.cfg.FailSafe.EscalateErrors {
			c.escalate(now)
		}
		if c.failSafe {
			c.applyFailSafe()
		}
		return
	}
	c.consecReadErrs = 0
	if c.failSafe {
		// Hold the escalated modes while re-qualifying the sensor; keep
		// the window warm so control resumes from fresh history.
		c.applyFailSafe()
		c.cleanSamples++
		if c.cleanSamples >= c.cfg.FailSafe.RecoverSamples && !c.fsPending() {
			c.release(now)
		}
		c.win.Add(t)
		return
	}
	if !c.win.Add(t) {
		return
	}
	c.mt.rounds.Inc()
	if !c.anchor {
		// First completed round: anchor each actuator's index to the
		// absolute temperature so a controller started on an already
		// hot machine begins from a proportionate mode.
		c.anchor = true
		avg := c.win.Avg()
		for _, ba := range c.acts {
			ba.idx = ba.arr.Clamp(int(math.Round(ba.coef * (avg - c.cfg.TminC))))
			c.apply(now, ba)
		}
		return
	}
	for _, ba := range c.acts {
		c.decide(now, ba)
	}
}

// escalate enters the fail-safe hold: every actuator is driven to its
// most effective mode until the escalation releases.
func (c *Controller) escalate(now time.Duration) {
	if c.failSafe || c.cfg.FailSafe.Disable {
		return
	}
	c.failSafe = true
	c.cleanSamples = 0
	c.fsEvents = append(c.fsEvents, FailSafeEvent{At: now, Engaged: true})
	c.mt.escalations.Inc()
	c.mt.failSafe.SetBool(true)
	for _, ba := range c.acts {
		ba.idx = ba.arr.Len() - 1
		ba.fsRetry = true
	}
}

// fsPending reports whether any escalated Apply has not landed yet.
func (c *Controller) fsPending() bool {
	for _, ba := range c.acts {
		if ba.fsRetry {
			return true
		}
	}
	return false
}

// applyFailSafe drives every actuator whose escalation has not stuck yet
// to its most effective mode, retrying on later samples until the write
// lands (the bus may be failing too).
func (c *Controller) applyFailSafe() {
	for _, ba := range c.acts {
		if !ba.fsRetry {
			continue
		}
		if err := ba.act.Apply(ba.arr.Mode(ba.idx)); err != nil {
			c.errs.Add(1)
			c.mt.errors.Inc()
			continue
		}
		ba.fsRetry = false
		ba.moves++
		c.mt.modeTransitions.Inc()
	}
}

// release ends the fail-safe hold: the anti-windup band around the
// fresh window average pulls the index back to a proportionate mode on
// the following rounds.
func (c *Controller) release(now time.Duration) {
	c.failSafe = false
	c.cleanSamples = 0
	c.consecApplyErrs = 0
	c.fsEvents = append(c.fsEvents, FailSafeEvent{At: now, Engaged: false})
	c.mt.recoveries.Inc()
	c.mt.failSafe.SetBool(false)
}

// decide performs the paper's index update for one actuator: try
// i + c·Δt_L1; if that does not change the index, try i + c·Δt_L2
// (throttled to once per FIFO span so sustained drift is not multiply
// counted). The result is then held inside the anti-windup lead band
// around the absolute anchor c·(T−Tmin).
func (c *Controller) decide(now time.Duration, ba *boundActuator) {
	if ba.l2Cooldown > 0 {
		ba.l2Cooldown--
	}
	di := int(math.Round(ba.coef * c.win.DeltaL1()))
	usedL2 := false
	if di == 0 && ba.l2Cooldown == 0 && c.win.L2Full() {
		c.mt.l2Fallbacks.Inc()
		di = int(math.Round(ba.coef * c.win.DeltaL2()))
		usedL2 = di != 0
	}
	if di < 0 && c.holdFloor {
		di = 0
	}
	target := ba.idx + di

	// Anti-windup: the index may lead the static anchor by at most
	// MaxLeadC degrees (proactivity) and must not lag it by more
	// (reactivity floor). Downward corrections are suppressed while
	// the hybrid holds the fan floor.
	center := ba.coef * (c.win.Avg() - c.cfg.TminC)
	lead := ba.coef * c.cfg.MaxLeadC
	if hi := int(math.Floor(center + lead)); target > hi && !(c.holdFloor && hi < ba.idx) {
		target = hi
	}
	if lo := int(math.Ceil(center - lead)); target < lo {
		target = lo
	}

	target = ba.arr.Clamp(target)
	if target == ba.idx {
		return
	}
	ba.idx = target
	if usedL2 {
		ba.l2Cooldown = c.cfg.Window.L2Size
	}
	c.apply(now, ba)
}

func (c *Controller) apply(now time.Duration, ba *boundActuator) {
	if err := ba.act.Apply(ba.arr.Mode(ba.idx)); err != nil {
		c.errs.Add(1)
		c.mt.errors.Inc()
		c.consecApplyErrs++
		if c.consecApplyErrs >= c.cfg.FailSafe.EscalateErrors {
			c.escalate(now)
		}
		return
	}
	c.consecApplyErrs = 0
	ba.moves++
	c.mt.modeTransitions.Inc()
}
