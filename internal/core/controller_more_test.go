package core

import (
	"math"
	"testing"
	"time"

	"thermctl/internal/core/window"
)

// Focused unit tests for the controller's anti-windup lead band and
// index arithmetic, using scripted temperatures for exact control.

func TestAntiWindupBoundsLead(t *testing.T) {
	// A violent sustained rise: without the lead band the index would
	// integrate far past the anchor. With MaxLeadC=7 °C and
	// c=(N-1)/(Tmax-Tmin)=99/44≈2.25, the index may exceed the anchor
	// center by at most ~16 cells.
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 40 + 0.8*float64(i) // +3.2 °C per round
		if vals[i] > 75 {
			vals[i] = 75
		}
	}
	s := &scriptedTemp{vals: vals}
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(100), s.read, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	coef := 99.0 / 44.0
	period := 250 * time.Millisecond
	for i := 1; i <= 200; i++ {
		c.OnStep(time.Duration(i) * period)
		avg := c.Window().Avg()
		if math.IsNaN(avg) {
			continue
		}
		center := coef * (avg - 38)
		if lead := float64(c.Index(0)) - center; lead > coef*7+1 {
			t.Fatalf("index %d leads anchor %0.f by %.1f cells (> band)", c.Index(0), center, lead)
		}
	}
}

func TestReactivityFloorPullsIndexUp(t *testing.T) {
	// Start the controller on a cold machine, then jump the scripted
	// temperature: even if per-round deltas alias to zero afterwards
	// (flat at the new level), the floor center-lead must drag the
	// index up to within the band of the hot anchor.
	vals := make([]float64, 120)
	for i := range vals {
		if i < 8 {
			vals[i] = 40
		} else {
			vals[i] = 68 // hot and flat
		}
	}
	s := &scriptedTemp{vals: vals}
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(100), s.read, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	period := 250 * time.Millisecond
	for i := 1; i <= 120; i++ {
		c.OnStep(time.Duration(i) * period)
	}
	coef := 99.0 / 44.0
	center := coef * (68 - 38)
	if float64(c.Index(0)) < center-coef*7-1 {
		t.Errorf("index %d lags the hot anchor %.0f beyond the band", c.Index(0), center)
	}
}

func TestCustomWindowConfigHonored(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.Window = window.Config{L1Size: 8, L2Size: 3}
	reads := 0
	read := func() (float64, error) { reads++; return 45, nil }
	fa := &fakeActuator{modes: 100}
	c, err := NewController(cfg, read, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	period := 250 * time.Millisecond
	for i := 1; i <= 8; i++ {
		c.OnStep(time.Duration(i) * period)
	}
	// 8-entry level-one window: exactly one round completed.
	if c.Window().Rounds() != 1 {
		t.Errorf("rounds = %d with an 8-entry window after 8 samples", c.Window().Rounds())
	}
}

func TestMovesCountsPerActuator(t *testing.T) {
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = 40 + float64(i)
	}
	s := &scriptedTemp{vals: vals}
	fan := &fakeActuator{modes: 100}
	dvfs := &fakeActuator{modes: 5}
	c, err := NewController(DefaultConfig(50), s.read,
		ActuatorBinding{Actuator: fan}, ActuatorBinding{Actuator: dvfs, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	drive(c, 48)
	if c.Moves(0) != uint64(len(fan.applied)) {
		t.Errorf("fan Moves %d vs applied %d", c.Moves(0), len(fan.applied))
	}
	if c.Moves(1) != uint64(len(dvfs.applied)) {
		t.Errorf("dvfs Moves %d vs applied %d", c.Moves(1), len(dvfs.applied))
	}
}

func TestHoldFloorStillAllowsIncreases(t *testing.T) {
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = 45 + 0.5*float64(i)
	}
	s := &scriptedTemp{vals: vals}
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(50), s.read, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	c.SetHoldFloor(true)
	drive(c, 60)
	if len(fa.applied) < 2 {
		t.Fatalf("hold-floor blocked increases too: %v", fa.applied)
	}
	last := fa.applied[len(fa.applied)-1]
	if last <= fa.applied[0] {
		t.Errorf("mode did not rise under hold-floor with rising temp: %v", fa.applied)
	}
}
