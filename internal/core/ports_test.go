package core

import (
	"math"
	"testing"

	"thermctl/internal/ipmi"
	"thermctl/internal/node"
)

func newTestNode(t *testing.T) *node.Node {
	t.Helper()
	n, err := node.New(node.DefaultConfig("core-test", 11))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSysfsTempReader(t *testing.T) {
	n := newTestNode(t)
	n.Settle(0)
	read := SysfsTemp(n.FS, n.Hwmon.TempInput)
	v, err := read()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-n.TrueDieC()) > 1 {
		t.Errorf("sysfs temp %v vs physical %v", v, n.TrueDieC())
	}
	bad := SysfsTemp(n.FS, "/nope")
	if _, err := bad(); err == nil {
		t.Error("missing path read succeeded")
	}
}

func TestIPMITempReader(t *testing.T) {
	n := newTestNode(t)
	n.Settle(0)
	read := IPMITemp(ipmi.NewClient(ipmi.Local{H: n.BMC}), node.SensorCPUTemp)
	v, err := read()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-n.TrueDieC()) > 1 {
		t.Errorf("ipmi temp %v vs physical %v", v, n.TrueDieC())
	}
}

func TestSysfsFanPort(t *testing.T) {
	n := newTestNode(t)
	p := &SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
	if err := p.SetDutyPercent(60); err != nil {
		t.Fatal(err)
	}
	if d := n.Fan.Duty(); math.Abs(d-60) > 1 {
		t.Errorf("fan duty = %v, want ≈60", d)
	}
	got, err := p.DutyPercent()
	if err != nil || math.Abs(got-60) > 1 {
		t.Errorf("readback = %v, %v", got, err)
	}
}

func TestIPMIFanPort(t *testing.T) {
	n := newTestNode(t)
	p := &IPMIFanPort{C: ipmi.NewClient(ipmi.Local{H: n.BMC})}
	if err := p.SetDutyPercent(35); err != nil {
		t.Fatal(err)
	}
	if d := n.Fan.Duty(); math.Abs(d-35) > 1 {
		t.Errorf("fan duty = %v, want ≈35", d)
	}
}

func TestFanActuatorModeMapping(t *testing.T) {
	n := newTestNode(t)
	act := NewFanActuator(&SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 75)
	if act.NumModes() != 100 {
		t.Fatalf("NumModes = %d", act.NumModes())
	}
	if d := act.DutyForMode(0); d != 1 {
		t.Errorf("mode 0 duty = %v, want 1 (MinDuty)", d)
	}
	if d := act.DutyForMode(99); d != 75 {
		t.Errorf("top mode duty = %v, want 75 (MaxDuty cap)", d)
	}
	// Monotone in mode.
	prev := -1.0
	for m := 0; m < 100; m++ {
		d := act.DutyForMode(m)
		if d <= prev {
			t.Fatalf("duty not monotone at mode %d", m)
		}
		prev = d
	}
	// Clamping.
	if act.DutyForMode(-5) != 1 || act.DutyForMode(1000) != 75 {
		t.Error("DutyForMode does not clamp")
	}
}

func TestFanActuatorApplyCurrentRoundTrip(t *testing.T) {
	n := newTestNode(t)
	act := NewFanActuator(&SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)
	for _, m := range []int{0, 25, 50, 99} {
		if err := act.Apply(m); err != nil {
			t.Fatal(err)
		}
		got, err := act.Current()
		if err != nil {
			t.Fatal(err)
		}
		if absInt(got-m) > 1 { // 8-bit PWM register quantization
			t.Errorf("Apply(%d) reads back mode %d", m, got)
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestDVFSActuator(t *testing.T) {
	n := newTestNode(t)
	act, err := NewDVFSActuator(&SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		t.Fatal(err)
	}
	if act.NumModes() != 5 {
		t.Fatalf("NumModes = %d, want 5 P-states", act.NumModes())
	}
	if f := act.FreqForMode(0); f != 2400000 {
		t.Errorf("mode 0 = %d kHz, want 2400000 (least effective = fastest)", f)
	}
	if f := act.FreqForMode(4); f != 1000000 {
		t.Errorf("mode 4 = %d kHz, want 1000000 (most effective = slowest)", f)
	}
	if err := act.Apply(2); err != nil {
		t.Fatal(err)
	}
	if n.CPU.FreqGHz() != 2.0 {
		t.Errorf("CPU at %v GHz after Apply(2)", n.CPU.FreqGHz())
	}
	m, err := act.Current()
	if err != nil || m != 2 {
		t.Errorf("Current = %d, %v", m, err)
	}
}

func TestDVFSActuatorClamping(t *testing.T) {
	n := newTestNode(t)
	act, err := NewDVFSActuator(&SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		t.Fatal(err)
	}
	if act.FreqForMode(-1) != 2400000 || act.FreqForMode(99) != 1000000 {
		t.Error("FreqForMode does not clamp")
	}
}
