package core

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeFanPort records the last commanded duty.
type fakeFanPort struct{ duty float64 }

func (p *fakeFanPort) SetDutyPercent(d float64) error { p.duty = d; return nil }
func (p *fakeFanPort) DutyPercent() (float64, error)  { return p.duty, nil }

// failAfter returns a reader producing v for n reads and failing
// permanently afterwards.
func failAfter(n int, v float64) TempReader {
	reads := 0
	return func() (float64, error) {
		reads++
		if reads > n {
			return 0, errors.New("sensor dead")
		}
		return v, nil
	}
}

// Regression for the skip-round-forever bug: a temperature reader that
// dies permanently mid-run used to leave the fan wherever it was while
// the controller counted errors forever. The fail-safe must drive it to
// 100% duty within the escalation window.
func TestFailSafePermanentReadFailureDrivesFanToMax(t *testing.T) {
	period := 250 * time.Millisecond
	port := &fakeFanPort{}
	fan := NewFanActuator(port, 100)
	goodSamples := 40 // 10 clean rounds before the sensor dies
	c, err := NewController(DefaultConfig(50), failAfter(goodSamples, 50), ActuatorBinding{Actuator: fan})
	if err != nil {
		t.Fatal(err)
	}
	drive(c, goodSamples)
	if port.duty >= 100 {
		t.Fatalf("fan already at %v%% before the failure", port.duty)
	}
	drive2 := func(from, n int) {
		for i := from + 1; i <= from+n; i++ {
			c.OnStep(time.Duration(i) * period)
		}
	}
	esc := DefaultFailSafeConfig().EscalateErrors
	drive2(goodSamples, esc-1)
	if c.FailSafe() {
		t.Fatal("fail-safe engaged before the escalation threshold")
	}
	drive2(goodSamples+esc-1, 1)
	if !c.FailSafe() {
		t.Fatal("fail-safe not engaged after the escalation threshold")
	}
	if port.duty != 100 {
		t.Errorf("fan duty = %v%% under fail-safe, want 100", port.duty)
	}
	ev := c.FailSafeEvents()
	if len(ev) != 1 || !ev[0].Engaged {
		t.Fatalf("events = %+v, want single escalation", ev)
	}
	wantAt := time.Duration(goodSamples+esc) * period
	if ev[0].At != wantAt {
		t.Errorf("escalated at %v, want %v", ev[0].At, wantAt)
	}
	// The escalation must hold: many more failed samples later the fan is
	// still pinned at max.
	drive2(goodSamples+esc, 200)
	if port.duty != 100 || !c.FailSafe() {
		t.Errorf("fail-safe released under a still-dead sensor (duty=%v)", port.duty)
	}
}

// A sensor that recovers releases the fail-safe after RecoverSamples
// consecutive clean reads, and normal control resumes.
func TestFailSafeRecovery(t *testing.T) {
	period := 250 * time.Millisecond
	port := &fakeFanPort{}
	fan := NewFanActuator(port, 100)
	reads := 0
	deadFrom, deadTo := 20, 40 // reads [21, 40] fail
	read := func() (float64, error) {
		reads++
		if reads > deadFrom && reads <= deadTo {
			return 0, errors.New("sensor glitch")
		}
		return 50, nil
	}
	c, err := NewController(DefaultConfig(50), read, ActuatorBinding{Actuator: fan})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 200; i++ {
		c.OnStep(time.Duration(i) * period)
	}
	ev := c.FailSafeEvents()
	if len(ev) != 2 || !ev[0].Engaged || ev[1].Engaged {
		t.Fatalf("events = %+v, want one escalation then one recovery", ev)
	}
	cfg := DefaultFailSafeConfig()
	wantRelease := time.Duration(deadTo+cfg.RecoverSamples) * period
	if ev[1].At != wantRelease {
		t.Errorf("released at %v, want %v", ev[1].At, wantRelease)
	}
	if c.FailSafe() {
		t.Error("fail-safe still engaged after recovery")
	}
	if port.duty >= 100 {
		t.Errorf("fan still at %v%% long after recovery; control did not resume", port.duty)
	}
}

// deadActuator rejects every Apply except the most effective mode, so
// a run of failed actuations must escalate even while reads stay clean.
type deadActuator struct {
	modes   int
	applied []int
}

func (a *deadActuator) Name() string  { return "dead" }
func (a *deadActuator) NumModes() int { return a.modes }
func (a *deadActuator) Apply(m int) error {
	if m != a.modes-1 {
		return errors.New("bus write failed")
	}
	a.applied = append(a.applied, m)
	return nil
}
func (a *deadActuator) Current() (int, error) { return 0, nil }

func TestFailSafeActuationFailuresEscalate(t *testing.T) {
	period := 250 * time.Millisecond
	act := &deadActuator{modes: 100}
	// Rising ramp: the index moves (and Apply fails) every round.
	reads := 0
	read := func() (float64, error) {
		reads++
		return 40 + float64(reads)*0.25, nil
	}
	c, err := NewController(DefaultConfig(50), read, ActuatorBinding{Actuator: act})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 400; i++ {
		c.OnStep(time.Duration(i) * period)
	}
	ev := c.FailSafeEvents()
	if len(ev) == 0 || !ev[0].Engaged {
		t.Fatalf("events = %+v, want an escalation from failed actuations", ev)
	}
	if len(act.applied) == 0 || act.applied[0] != act.modes-1 {
		t.Errorf("escalation never landed the most effective mode; applied=%v", act.applied)
	}
}

// TestErrorsConcurrentWithOnStep exercises the Errors/Status vs OnStep
// data race fixed by making the error counter atomic. Run with -race.
func TestErrorsConcurrentWithOnStep(t *testing.T) {
	failing := func() (float64, error) { return 0, errors.New("dead") }
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(50), failing, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		drive(c, 2000)
	}()
	var last uint64
	for i := 0; i < 2000; i++ {
		last = c.Errors()
	}
	wg.Wait()
	if got := c.Errors(); got != 2000 {
		t.Errorf("Errors = %d after 2000 failed samples, want 2000", got)
	}
	_ = last
}

// TDVFS mirrors the controller's policy with the frequency floor as the
// escalation target; Engaged() holds the hybrid fan floor throughout.
func TestTDVFSFailSafeDrivesFrequencyFloor(t *testing.T) {
	n, act := newDVFSRig(t)
	d, err := NewTDVFS(DefaultTDVFSConfig(50), failAfter(40, 48), act)
	if err != nil {
		t.Fatal(err)
	}
	driveTDVFS(d, 40, nil)
	if d.FailSafe() || d.Engaged() {
		t.Fatal("fail-safe engaged while the sensor was healthy")
	}
	period := 250 * time.Millisecond
	esc := DefaultFailSafeConfig().EscalateErrors
	for i := 41; i <= 40+esc; i++ {
		d.OnStep(time.Duration(i) * period)
	}
	if !d.FailSafe() {
		t.Fatal("fail-safe not engaged after the escalation threshold")
	}
	if !d.Engaged() {
		t.Error("Engaged() false under fail-safe; hybrid fan floor would drop")
	}
	if want := act.NumModes() - 1; d.CurrentMode() != want {
		t.Errorf("CurrentMode = %d under fail-safe, want floor %d", d.CurrentMode(), want)
	}
	if got, want := n.CPU.FreqGHz(), 1.0; got != want {
		t.Errorf("CPU at %v GHz under fail-safe, want floor %v", got, want)
	}
	ev := d.FailSafeEvents()
	if len(ev) != 1 || !ev[0].Engaged {
		t.Fatalf("events = %+v, want single escalation", ev)
	}
}

func TestFailSafeDisable(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.FailSafe.Disable = true
	fa := &fakeActuator{modes: 100}
	c, err := NewController(cfg, failAfter(0, 0), ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	drive(c, 100)
	if c.FailSafe() || len(fa.applied) != 0 {
		t.Errorf("disabled fail-safe still escalated (applied=%v)", fa.applied)
	}
	if c.Errors() != 100 {
		t.Errorf("Errors = %d, want 100", c.Errors())
	}
}
