package core

import (
	"testing"
	"time"

	"thermctl/internal/ipmi"
	"thermctl/internal/node"
	"thermctl/internal/workload"
)

// These tests back the paper's title claim: the same control law runs
// over the in-band path (sysfs, through the host) and the out-of-band
// path (IPMI, through the BMC) with equivalent results, because the
// controller is written against ports, not mechanisms.

func runFanControlOver(t *testing.T, seed uint64, oob bool) (finalTempC, finalDuty float64, errs uint64) {
	t.Helper()
	n, err := node.New(node.DefaultConfig("path", seed))
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)

	var read TempReader
	var port FanPort
	if oob {
		client := ipmi.NewClient(ipmi.Local{H: n.BMC})
		read = IPMITemp(client, node.SensorCPUTemp)
		port = &IPMIFanPort{C: client}
	} else {
		read = SysfsTemp(n.FS, n.Hwmon.TempInput)
		port = &SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
	}
	ctl, err := NewController(DefaultConfig(50), read,
		ActuatorBinding{Actuator: NewFanActuator(port, 100)})
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(workload.NewCPUBurn(nil))
	dt := 250 * time.Millisecond
	for i := 0; i < 1200; i++ {
		n.Step(dt)
		ctl.OnStep(n.Elapsed())
	}
	return n.TrueDieC(), n.Fan.Duty(), ctl.Errors()
}

func TestOutOfBandPathWorks(t *testing.T) {
	temp, duty, errs := runFanControlOver(t, 51, true)
	if errs != 0 {
		t.Fatalf("controller errors over IPMI: %d", errs)
	}
	if duty < 20 {
		t.Errorf("OOB-controlled fan at %.1f%%", duty)
	}
	if temp > 58 {
		t.Errorf("OOB-controlled die at %.1f °C", temp)
	}
}

func TestInBandAndOutOfBandPathsEquivalent(t *testing.T) {
	// Same seed, same workload, same controller — the two paths differ
	// only in resolution (the IPMI temp reading is centi-degree, the
	// sysfs one milli-degree; the IPMI duty command is whole-percent).
	// Steady-state results must agree closely.
	ibTemp, ibDuty, _ := runFanControlOver(t, 53, false)
	oobTemp, oobDuty, _ := runFanControlOver(t, 53, true)
	if d := abs(ibTemp - oobTemp); d > 1.5 {
		t.Errorf("paths diverge in temperature: in-band %.2f vs OOB %.2f", ibTemp, oobTemp)
	}
	if d := abs(ibDuty - oobDuty); d > 8 {
		t.Errorf("paths diverge in duty: in-band %.1f vs OOB %.1f", ibDuty, oobDuty)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestOutOfBandOverTCP runs the controller against a BMC served over a
// real TCP connection: the full out-of-band stack, wire encoding
// included. The simulation steps and the controller issues IPMI
// commands from the same goroutine, as a management station polling a
// rack would.
func TestOutOfBandOverTCP(t *testing.T) {
	n, err := node.New(node.DefaultConfig("tcp-path", 57))
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	srv, err := ipmi.ListenAndServe("127.0.0.1:0", n.BMC)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := ipmi.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	client := ipmi.NewClient(conn)

	ctl, err := NewController(DefaultConfig(50),
		IPMITemp(client, node.SensorCPUTemp),
		ActuatorBinding{Actuator: NewFanActuator(&IPMIFanPort{C: client}, 100)})
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(workload.NewCPUBurn(nil))
	dt := 250 * time.Millisecond
	for i := 0; i < 600; i++ {
		n.Step(dt)
		ctl.OnStep(n.Elapsed())
	}
	if ctl.Errors() != 0 {
		t.Fatalf("controller errors over TCP: %d", ctl.Errors())
	}
	if n.Fan.Duty() < 15 {
		t.Errorf("TCP-controlled fan at %.1f%%", n.Fan.Duty())
	}
}
