package core

import "thermctl/internal/metrics"

// This file wires the controller facades to the metrics layer.
// Registration happens here, at wiring time — never inside
// OnStep-reachable code (the metricsafe analyzer enforces that) — and
// the handles themselves are nil-safe, so an uninstrumented controller
// pays one predictable branch per event.
//
// The engine refactor split each controller's instruments into the
// engine-generic handles on its Binding (rounds, transitions, errors,
// fail-safe edges) and the policy-specific handles on its Policy; the
// facades install the historical metric names into both, so scrape
// surfaces are unchanged.

// InstrumentMetrics registers the controller's instruments on reg with
// the given constant labels and attaches them. Call it once at wiring
// time, before the control loop starts; hot paths only update the
// handles.
func (c *Controller) InstrumentMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	c.b.mt = bindingMetrics{
		rounds: reg.NewCounter("thermctl_controller_rounds_total",
			"completed temperature history-window rounds", labels...),
		modeTransitions: reg.NewCounter("thermctl_controller_mode_transitions_total",
			"applied actuator mode changes", labels...),
		errors: reg.NewCounter("thermctl_controller_errors_total",
			"failed sensor reads or actuator writes", labels...),
		escalations: reg.NewCounter("thermctl_controller_failsafe_escalations_total",
			"fail-safe escalations after consecutive read or actuation failures", labels...),
		recoveries: reg.NewCounter("thermctl_controller_failsafe_recoveries_total",
			"fail-safe releases after consecutive clean samples", labels...),
		failSafe: reg.NewGauge("thermctl_controller_failsafe",
			"1 while the fail-safe holds every actuator at its most effective mode", labels...),
	}
	c.pol.mt = ctlArrayMetrics{
		l2Fallbacks: reg.NewCounter("thermctl_controller_l2_fallbacks_total",
			"rounds deciding on the long-horizon delta-t-L2 predictor after delta-t-L1 produced no move", labels...),
		holdFloor: reg.NewGauge("thermctl_controller_hold_floor",
			"1 while downward fan moves are held by the hybrid coordinator", labels...),
	}
}

// InstrumentMetrics registers the daemon's instruments on reg with the
// given constant labels and attaches them. Wiring-time only. The
// binding's modeTransitions handle is deliberately left nil: tDVFS has
// always exported its mode changes as the downscales/upscales pair
// instead of a generic transition counter.
func (d *TDVFS) InstrumentMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	d.b.mt = bindingMetrics{
		rounds: reg.NewCounter("thermctl_tdvfs_rounds_total",
			"completed tDVFS history-window rounds", labels...),
		errors: reg.NewCounter("thermctl_tdvfs_errors_total",
			"failed sensor reads or frequency writes", labels...),
		escalations: reg.NewCounter("thermctl_tdvfs_failsafe_escalations_total",
			"fail-safe escalations after consecutive read or actuation failures", labels...),
		recoveries: reg.NewCounter("thermctl_tdvfs_failsafe_recoveries_total",
			"fail-safe releases after consecutive clean samples", labels...),
		failSafe: reg.NewGauge("thermctl_tdvfs_failsafe",
			"1 while the fail-safe holds the CPU at the frequency floor", labels...),
	}
	d.pol.mt = thresholdMetrics{
		downscales: reg.NewCounter("thermctl_tdvfs_downscales_total",
			"threshold-trip frequency scale-downs", labels...),
		upscales: reg.NewCounter("thermctl_tdvfs_upscales_total",
			"restores to the nominal frequency", labels...),
		engaged: reg.NewGauge("thermctl_tdvfs_engaged",
			"1 while the CPU is held below its nominal frequency", labels...),
	}
}

// InstrumentMetrics instruments both coupled controllers plus the
// coordination itself. Wiring-time only.
func (h *Hybrid) InstrumentMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	h.Fan.InstrumentMetrics(reg, labels...)
	h.DVFS.InstrumentMetrics(reg, labels...)
	h.holdSteps = reg.NewCounter("thermctl_hybrid_hold_steps_total",
		"simulation steps with the fan floor held while tDVFS was engaged", labels...)
}

// watchdogMetrics bundles the fan-failure watchdog's instruments.
type watchdogMetrics struct {
	// failures counts declared fan failures (watchdog firings).
	failures *metrics.Counter
	// recoveries counts ended emergencies.
	recoveries *metrics.Counter
	// errors counts failed tach reads or actuations.
	errors *metrics.Counter
	// emergency is 1 while a fan failure is declared.
	emergency *metrics.Gauge
}

// InstrumentMetrics registers the watchdog's instruments on reg with
// the given constant labels and attaches them. Wiring-time only.
func (w *Watchdog) InstrumentMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	w.mt = watchdogMetrics{
		failures: reg.NewCounter("thermctl_watchdog_failures_total",
			"declared fan failures", labels...),
		recoveries: reg.NewCounter("thermctl_watchdog_recoveries_total",
			"fan-failure emergencies ended by recovery", labels...),
		errors: reg.NewCounter("thermctl_watchdog_errors_total",
			"failed tachometer reads or frequency writes", labels...),
		emergency: reg.NewGauge("thermctl_watchdog_emergency",
			"1 while a fan failure is declared", labels...),
	}
}
