package core

import (
	"testing"
	"time"

	"thermctl/internal/ipmi"
	"thermctl/internal/node"
	"thermctl/internal/rng"
	"thermctl/internal/workload"
)

// Fault-injection tests: the control plane must degrade gracefully when
// the i2c bus glitches — count errors, keep controlling on the samples
// that do arrive, never wedge.

func TestFanControlSurvivesFlakyBus(t *testing.T) {
	n, err := node.New(node.DefaultConfig("flaky", 83))
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	// 20% of i2c transactions fail: duty writes and mode flips through
	// the ADT7467 driver will intermittently error.
	n.Bus.SetFaultInjection(0.20, rng.New(7))

	ctl, err := NewController(DefaultConfig(50),
		SysfsTemp(n.FS, n.Hwmon.TempInput), // hwmon path: unaffected by the bus
		ActuatorBinding{Actuator: NewFanActuator(&SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)})
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(workload.NewCPUBurn(nil))
	dt := 250 * time.Millisecond
	for i := 0; i < 2400; i++ {
		n.Step(dt)
		ctl.OnStep(n.Elapsed())
	}
	if ctl.Errors() == 0 {
		t.Error("no errors counted despite 20% bus fault rate")
	}
	// Control must still have worked through the successful writes.
	if n.Fan.Duty() < 20 {
		t.Errorf("fan at %.1f%% — control collapsed under bus faults", n.Fan.Duty())
	}
	if n.TrueDieC() > 60 {
		t.Errorf("die at %.1f °C — control ineffective under bus faults", n.TrueDieC())
	}
}

func TestTDVFSSurvivesSensorDropouts(t *testing.T) {
	// One read in five fails outright; the daemon must skip those
	// samples (the window sees fewer rounds) yet still trigger on a
	// genuinely hot, rising die.
	n, err := node.New(node.DefaultConfig("dropout", 89))
	if err != nil {
		t.Fatal(err)
	}
	act, err := NewDVFSActuator(&SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	flaky := func() (float64, error) {
		i++
		if i%5 == 0 {
			return 0, errTest
		}
		// A clean rise through the threshold.
		v := 48 + 0.05*float64(i)
		if v > 58 {
			v = 58
		}
		return v, nil
	}
	d, err := NewTDVFS(DefaultTDVFSConfig(50), flaky, act)
	if err != nil {
		t.Fatal(err)
	}
	period := 250 * time.Millisecond
	for s := 1; s <= 600; s++ {
		d.OnStep(time.Duration(s) * period)
	}
	if d.Errors() == 0 {
		t.Error("no read errors counted")
	}
	if d.Downscales() == 0 {
		t.Error("tDVFS never triggered despite the sustained rise")
	}
	if n.CPU.FreqGHz() >= 2.4 {
		t.Errorf("frequency still %.1f GHz", n.CPU.FreqGHz())
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "injected sensor fault" }

func TestBMCPathSurvivesFlakyBus(t *testing.T) {
	// The BMC's fan commands ride the same i2c bus; with injected
	// faults its completion codes must surface as errors, not panics
	// or silent success.
	n, err := node.New(node.DefaultConfig("bmcflaky", 97))
	if err != nil {
		t.Fatal(err)
	}
	n.Bus.SetFaultInjection(1.0, rng.New(3)) // every transaction fails
	port := &IPMIFanPort{C: clientFor(n)}
	if err := port.SetDutyPercent(50); err == nil {
		t.Error("fan command succeeded over a dead bus")
	}
	n.Bus.SetFaultInjection(0, nil)
	if err := port.SetDutyPercent(50); err != nil {
		t.Errorf("fan command failed after bus recovered: %v", err)
	}
}

// clientFor builds a local IPMI client for a node (helper shared by
// fault tests).
func clientFor(n *node.Node) *ipmi.Client {
	return ipmi.NewClient(ipmi.Local{H: n.BMC})
}
