package core

import (
	"time"

	"thermctl/internal/core/ctlarray"
	"thermctl/internal/metrics"
)

// ThresholdPolicy is the tDVFS decision law of §4.3 as an engine
// policy: threshold-gated, trend-aware stepping through a Pp-filled
// control array over a single actuator. Unlike the continuous ctlarray
// policy it touches its knob only when heat demonstrably exceeds what
// the other techniques remove, minimizing the in-band technique's
// performance cost. It is the policy behind the TDVFS facade.
type ThresholdPolicy struct {
	thresholdC       float64
	hysteresisC      float64
	trendEpsilonC    float64
	emergencyMarginC float64
	cooldownRounds   int

	arr      *ctlarray.Array
	curMode  int // physical mode currently applied (0 = nominal)
	cooldown int
	downs    uint64
	ups      uint64

	// trigger bookkeeping for the experiments: when the first
	// scale-down happened.
	firstDownAt time.Duration
	triggered   bool

	mt thresholdMetrics
}

// thresholdMetrics bundles the policy-specific instrument handles (the
// engine-generic ones live on the binding).
type thresholdMetrics struct {
	// downscales counts threshold-trip scale-down decisions.
	downscales *metrics.Counter
	// upscales counts restore-to-nominal decisions.
	upscales *metrics.Counter
	// engaged is 1 while the policy holds its knob below nominal.
	engaged *metrics.Gauge
}

// NewThresholdPolicy builds the policy over an actuator's mode count.
// Range validation on cfg is the caller's job (NewTDVFS performs it).
func NewThresholdPolicy(cfg TDVFSConfig, numModes int) (*ThresholdPolicy, error) {
	arr, err := ctlarray.New(cfg.N, numModes, cfg.Pp)
	if err != nil {
		return nil, err
	}
	return &ThresholdPolicy{
		thresholdC:       cfg.ThresholdC,
		hysteresisC:      cfg.HysteresisC,
		trendEpsilonC:    cfg.TrendEpsilonC,
		emergencyMarginC: cfg.EmergencyMarginC,
		cooldownRounds:   cfg.CooldownRounds,
		arr:              arr,
	}, nil
}

// Name implements Policy.
func (p *ThresholdPolicy) Name() string { return "threshold" }

// CurrentMode returns the physical mode currently applied (0 is
// nominal).
func (p *ThresholdPolicy) CurrentMode() int { return p.curMode }

// Engaged reports whether the policy is holding its knob below the
// nominal mode.
func (p *ThresholdPolicy) Engaged() bool { return p.curMode > 0 }

// Downscales returns the number of scale-down decisions taken.
func (p *ThresholdPolicy) Downscales() uint64 { return p.downs }

// Upscales returns the number of restore decisions taken.
func (p *ThresholdPolicy) Upscales() uint64 { return p.ups }

// TriggeredAt returns when the first scale-down happened and whether
// one happened at all.
func (p *ThresholdPolicy) TriggeredAt() (time.Duration, bool) { return p.firstDownAt, p.triggered }

// Decide implements Policy: scale down while the average temperature is
// consistently above the threshold and still rising (or consistently
// inside the emergency band), restore to nominal once consistently
// below threshold − hysteresis, with a decision cooldown in between so
// the thermal response can develop before judging again.
func (p *ThresholdPolicy) Decide(tx *Txn) {
	if p.cooldown > 0 {
		p.cooldown--
		return
	}
	win := tx.Window()
	rising := win.DeltaL2() > p.trendEpsilonC
	emergency := win.AllL2Above(p.thresholdC + p.emergencyMarginC)
	switch {
	case (win.AllL2Above(p.thresholdC) && rising) || emergency:
		// Consistently above threshold: move to the least-effective
		// array mode that still exceeds the current one. How far that
		// jumps is exactly what Pp encodes: at Pp=50 the array holds
		// every P-state, so this is one step (2.4→2.2 GHz); at Pp=25
		// the array skips states, jumping 2.4→2.0 GHz (the paper's
		// Figure 10 markers).
		next := -1
		for i := 0; i < p.arr.Len(); i++ {
			if m := p.arr.Mode(i); m > p.curMode {
				next = m
				break
			}
		}
		if next < 0 {
			return // already at the most effective mode
		}
		if !tx.Apply(0, next) {
			return
		}
		p.curMode = next
		p.downs++
		p.mt.downscales.Inc()
		p.mt.engaged.SetBool(true)
		if !p.triggered {
			p.triggered = true
			p.firstDownAt = tx.Now()
		}
		p.cooldown = p.cooldownRounds

	case p.curMode > 0 && win.AllL2Below(p.thresholdC-p.hysteresisC):
		// Consistently below threshold: restore the nominal mode
		// directly, as the paper's Figures 8 and 10 show (2.2→2.4 and
		// 2.0→2.4 in one step).
		if !tx.Apply(0, 0) {
			return
		}
		p.curMode = 0
		p.ups++
		p.mt.upscales.Inc()
		p.mt.engaged.SetBool(false)
		p.cooldown = p.cooldownRounds
	}
}

// OnFailSafeApplied implements FailSafeApplyPolicy: a landed fail-safe
// actuation is the mode floor, so recording it keeps Engaged() true and
// the hybrid fan floor held throughout the escalation.
func (p *ThresholdPolicy) OnFailSafeApplied(_, mode int) {
	p.curMode = mode
	p.mt.engaged.SetBool(mode > 0)
}

// OnRelease implements ReleasePolicy: the mode stays at the floor; the
// normal restore path brings it back to nominal once the re-armed
// cooldown elapses.
func (p *ThresholdPolicy) OnRelease() {
	p.cooldown = p.cooldownRounds
}
