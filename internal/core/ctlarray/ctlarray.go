// Package ctlarray implements the paper's thermal control array
// (§3.2.2): the unified representation that maps any actuator's physical
// modes onto a common N-entry array whose fill encodes the user's
// control policy Pp.
//
// Physical modes are identified by integers 0..M-1 in ascending order of
// temperature-control effectiveness (for a fan, ascending duty; for
// DVFS, descending frequency). The array holds N mode values in
// non-descending effectiveness, duplicates allowed. Given the policy
// parameter Pp ∈ [Pmin, Pmax] (the paper uses [1, 100]), Eq. (1)
// determines the pivot
//
//	np = ⌊(Pp − Pmin)(N − 1)/(Pmax − Pmin)⌋ + 1,
//
// cells [np, N] (1-based) are filled with the most effective mode M−1,
// and cells [1, np−1] with a subset of the remaining modes extracted
// evenly from the full set. A small Pp yields a small np, so most of the
// array holds the most effective mode and a small index increment
// produces a large cooling increment — an aggressive, temperature-
// oriented policy. A large Pp spreads the physical modes across the
// array — a conservative, cost-oriented policy.
package ctlarray

import "fmt"

// Policy bounds from the paper.
const (
	PpMin = 1
	PpMax = 100
)

// Array is one filled thermal control array.
type Array struct {
	cells []int
	modes int
	pp    int
}

// Fill computes the array cells for n cells over m physical modes at
// policy pp. It is exported separately from New for direct use in tests
// and ablations.
func Fill(n, m, pp int) ([]int, error) {
	if n < 2 {
		return nil, fmt.Errorf("ctlarray: N=%d must be >= 2", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("ctlarray: M=%d must be >= 1", m)
	}
	if pp < PpMin || pp > PpMax {
		return nil, fmt.Errorf("ctlarray: Pp=%d outside [%d, %d]", pp, PpMin, PpMax)
	}
	// Eq. (1).
	np := (pp-PpMin)*(n-1)/(PpMax-PpMin) + 1

	cells := make([]int, n)
	// Cells [np, N] (1-based) hold the most effective mode.
	for i := np - 1; i < n; i++ {
		cells[i] = m - 1
	}
	// Cells [1, np-1] hold an even extraction of the remaining modes
	// 0..M-2, in non-descending order.
	k := np - 1 // number of leading cells
	for i := 0; i < k; i++ {
		if m == 1 {
			cells[i] = 0
			continue
		}
		// Spread i = 0..k-1 over modes 0..M-2 evenly; the first cell
		// always stores the least effective mode g1 as the paper
		// requires.
		cells[i] = i * (m - 1) / k
	}
	return cells, nil
}

// New returns a filled array.
func New(nCells, nModes, pp int) (*Array, error) {
	cells, err := Fill(nCells, nModes, pp)
	if err != nil {
		return nil, err
	}
	return &Array{cells: cells, modes: nModes, pp: pp}, nil
}

// Len returns N, the number of cells.
func (a *Array) Len() int { return len(a.cells) }

// Modes returns M, the number of physical modes.
func (a *Array) Modes() int { return a.modes }

// Pp returns the policy parameter the array was filled with.
func (a *Array) Pp() int { return a.pp }

// Mode returns the physical mode stored at cell index i (0-based),
// clamping i into [0, N-1] — the controller's index arithmetic may
// overshoot at the range ends.
func (a *Array) Mode(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= len(a.cells) {
		i = len(a.cells) - 1
	}
	return a.cells[i]
}

// Clamp limits a candidate cell index to the valid range.
func (a *Array) Clamp(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(a.cells) {
		return len(a.cells) - 1
	}
	return i
}

// Cells returns a copy of the raw cell values.
func (a *Array) Cells() []int { return append([]int(nil), a.cells...) }

// FirstIndexOf returns the lowest cell index whose mode is >= mode,
// used to re-anchor the controller's index after an external actor
// moved the device. It returns N-1 if no cell reaches mode.
func (a *Array) FirstIndexOf(mode int) int {
	for i, v := range a.cells {
		if v >= mode {
			return i
		}
	}
	return len(a.cells) - 1
}
