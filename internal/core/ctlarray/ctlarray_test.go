package ctlarray

import (
	"testing"
	"testing/quick"
)

func TestFillValidation(t *testing.T) {
	if _, err := Fill(1, 5, 50); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := Fill(10, 0, 50); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := Fill(10, 5, 0); err == nil {
		t.Error("Pp=0 accepted")
	}
	if _, err := Fill(10, 5, 101); err == nil {
		t.Error("Pp=101 accepted")
	}
}

func TestEq1Pivot(t *testing.T) {
	// Pp=Pmin → np=1: the whole array is the most effective mode.
	cells, err := Fill(10, 5, PpMin)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range cells {
		if v != 4 {
			t.Errorf("Pp=1: cell %d = %d, want 4", i, v)
		}
	}
	// Pp=Pmax → np=N: only the last cell is forced to the max mode and
	// the leading cells spread the full mode set.
	cells, err = Fill(10, 5, PpMax)
	if err != nil {
		t.Fatal(err)
	}
	if cells[9] != 4 {
		t.Errorf("Pp=100: last cell = %d, want 4", cells[9])
	}
	if cells[0] != 0 {
		t.Errorf("Pp=100: first cell = %d, want 0 (least effective mode g1)", cells[0])
	}
}

func TestNonDescendingAndBounded(t *testing.T) {
	if err := quick.Check(func(nRaw, mRaw, ppRaw uint8) bool {
		n := 2 + int(nRaw)%40
		m := 1 + int(mRaw)%20
		pp := 1 + int(ppRaw)%100
		cells, err := Fill(n, m, pp)
		if err != nil {
			return false
		}
		prev := -1
		for _, v := range cells {
			if v < 0 || v >= m {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		return cells[len(cells)-1] == m-1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSmallerPpIsMoreAggressive(t *testing.T) {
	// At every cell index, a smaller Pp must select an equal-or-more
	// effective mode.
	if err := quick.Check(func(aRaw, bRaw uint8) bool {
		pa := 1 + int(aRaw)%100
		pb := 1 + int(bRaw)%100
		if pa > pb {
			pa, pb = pb, pa
		}
		ca, _ := Fill(20, 6, pa)
		cb, _ := Fill(20, 6, pb)
		for i := range ca {
			if ca[i] < cb[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestDVFSArraysMatchPaperFigures checks the mode sequences that
// reproduce the frequency jumps visible in the paper's Figures 8 and 10,
// with the Athlon64's 5 P-states as modes (mode 0 = 2.4 GHz ... mode 4 =
// 1.0 GHz) and N=10.
func TestDVFSArraysMatchPaperFigures(t *testing.T) {
	// Pp=50: np=5, leading cells hold the full set 0,1,2,3 — the first
	// scale-down from 2.4 GHz goes one step to 2.2 GHz (Fig. 8, Fig.10 ③).
	cells, _ := Fill(10, 5, 50)
	want := []int{0, 1, 2, 3, 4, 4, 4, 4, 4, 4}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("Pp=50 cells = %v, want %v", cells, want)
		}
	}
	// Pp=25: np=3, two leading cells hold modes 0 and 2 — the first
	// scale-down jumps 2.4→2.0 GHz (Fig. 10 ①), and scaling back up
	// returns directly to 2.4 GHz (Fig. 10 ②).
	cells, _ = Fill(10, 5, 25)
	if cells[0] != 0 || cells[1] != 2 || cells[2] != 4 {
		t.Errorf("Pp=25 cells = %v, want leading 0,2 then 4s", cells)
	}
}

func TestFullSetWhenRatioIsOne(t *testing.T) {
	// N == M and Pp=Pmax: np=N, leading N-1 cells must be exactly the
	// full set of non-max modes ("If the ratio is 1, then the full set
	// is used").
	cells, _ := Fill(5, 5, 100)
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("N=M Pp=100 cells = %v, want %v", cells, want)
		}
	}
}

func TestDuplicatesWhenNExceedsM(t *testing.T) {
	// N > M: duplicates must appear (allowed by the paper), still
	// non-descending.
	cells, _ := Fill(100, 5, 100)
	seen := map[int]int{}
	for _, v := range cells {
		seen[v]++
	}
	for m := 0; m < 5; m++ {
		if seen[m] == 0 {
			t.Errorf("mode %d absent from N=100 array", m)
		}
	}
	if seen[0] < 2 {
		t.Error("expected duplicated modes when N >> M")
	}
}

func TestSingleModeDevice(t *testing.T) {
	// A device with one mode: the array is all zeros and the technique
	// is insensitive to temperature — the paper's extreme case.
	cells, err := Fill(8, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cells {
		if v != 0 {
			t.Errorf("single-mode array cell = %d", v)
		}
	}
}

func TestModeClampsIndex(t *testing.T) {
	a, err := New(10, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mode(-3) != a.Mode(0) {
		t.Error("negative index not clamped")
	}
	if a.Mode(99) != a.Mode(9) {
		t.Error("overflow index not clamped")
	}
	if a.Clamp(-1) != 0 || a.Clamp(100) != 9 || a.Clamp(5) != 5 {
		t.Error("Clamp wrong")
	}
}

func TestAccessors(t *testing.T) {
	a, _ := New(10, 5, 25)
	if a.Len() != 10 || a.Modes() != 5 || a.Pp() != 25 {
		t.Errorf("accessors: %d %d %d", a.Len(), a.Modes(), a.Pp())
	}
	c := a.Cells()
	c[0] = 99
	if a.Mode(0) == 99 {
		t.Error("Cells returned internal storage")
	}
}

func TestFirstIndexOf(t *testing.T) {
	a, _ := New(10, 5, 50) // cells 0,1,2,3,4,4,4,4,4,4
	if got := a.FirstIndexOf(0); got != 0 {
		t.Errorf("FirstIndexOf(0) = %d", got)
	}
	if got := a.FirstIndexOf(3); got != 3 {
		t.Errorf("FirstIndexOf(3) = %d", got)
	}
	if got := a.FirstIndexOf(4); got != 4 {
		t.Errorf("FirstIndexOf(4) = %d", got)
	}
	if got := a.FirstIndexOf(99); got != 9 {
		t.Errorf("FirstIndexOf(99) = %d, want N-1", got)
	}
}

func BenchmarkFill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = Fill(100, 100, 50)
	}
}
