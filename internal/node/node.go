// Package node assembles one simulated server: a DVFS-capable CPU, its
// RC thermal path, a PWM fan behind an ADT7467 on an i2c bus, an on-die
// thermal sensor exported through a virtual sysfs (the in-band path), a
// BMC answering IPMI commands (the out-of-band path), and a wall-power
// meter.
//
// The node is stepped with a fixed dt by its owner (a cluster or a
// standalone clock loop). Each step: the workload sets utilization, the
// CPU retires work and dissipates power, the fan rotor and the thermal
// network integrate, the ADT7467 runs its monitoring cycle, and the
// power meter accumulates. Controllers never touch these structs
// directly — they act through the hwmon/cpufreq files or the BMC, like
// their real counterparts.
package node

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"thermctl/internal/acpi"
	"thermctl/internal/adt7467"
	"thermctl/internal/cpu"
	"thermctl/internal/cpufreq"
	"thermctl/internal/cstates"
	"thermctl/internal/fan"
	"thermctl/internal/faults"
	"thermctl/internal/hwmon"
	"thermctl/internal/i2c"
	"thermctl/internal/ipmi"
	"thermctl/internal/power"
	"thermctl/internal/rng"
	"thermctl/internal/sensor"
	"thermctl/internal/thermal"
	"thermctl/internal/workload"
)

// BMC sensor numbers of the standard repository.
const (
	SensorCPUTemp  = 1
	SensorFanRPM   = 2
	SensorSystemW  = 3
	SensorAmbientC = 4
)

// Config describes one node.
type Config struct {
	// Name appears in traces and reports.
	Name string
	// Seed drives this node's noise streams.
	Seed uint64
	// CPU, Fan, Thermal, Sensor configure the devices; zero values are
	// replaced by the package defaults.
	CPU     cpu.Config
	Fan     fan.Config
	Thermal thermal.Config
	Sensor  sensor.Config
	// BaseW is the constant platform power.
	BaseW float64
	// InitialDuty is the fan duty at boot, percent.
	InitialDuty float64
	// AmbientOffsetC shifts this node's inlet temperature, modelling
	// position-dependent rack hot spots.
	AmbientOffsetC float64
	// ProtectC is the hardware thermal-protection trip point (the
	// PROCHOT/thermal-throttle temperature): when the die reaches it,
	// the hardware forces the lowest P-state until the die falls
	// ProtectHystC below the trip point. This is the "thermal
	// emergency" whose slowdowns the paper's controllers exist to
	// prevent. Zero selects the default 70 degC.
	ProtectC float64
	// ProtectHystC is the release hysteresis (default 5 degC).
	ProtectHystC float64
	// ThermalState, when non-nil, is caller-provided backing storage
	// for this node's thermal integrator state. The cluster passes a
	// slot of one contiguous slice covering all its nodes
	// (struct-of-arrays) so the hot step sweep walks dense memory; nil
	// lets the node own its state. Reset to ambient by New.
	ThermalState *thermal.State
	// Meter, when non-nil, is the node's power accumulator, likewise a
	// cluster-provided contiguous slot. Nil allocates a private meter.
	// Reset by New.
	Meter *power.Meter
}

// DefaultConfig returns the paper's node: Athlon64 4000+, 4300 RPM fan,
// calibrated thermal network, lm-sensors-grade sensor.
func DefaultConfig(name string, seed uint64) Config {
	return Config{
		Name:         name,
		Seed:         seed,
		CPU:          cpu.DefaultConfig(),
		Fan:          fan.Default(),
		Thermal:      thermal.Default(),
		Sensor:       sensor.Default(),
		BaseW:        power.DefaultBaseW,
		InitialDuty:  10,
		ProtectC:     70,
		ProtectHystC: 5,
	}
}

// Node is one assembled server.
type Node struct {
	// Name identifies the node.
	Name string

	// Physical models.
	CPU     *cpu.CPU
	Fan     *fan.Fan
	Thermal *thermal.Network
	Sensor  *sensor.Sensor

	// Bus and devices.
	Bus  *i2c.Bus
	Chip *adt7467.Chip
	Drv  *adt7467.Driver

	// In-band interfaces.
	FS      *hwmon.FS
	Hwmon   hwmon.Chip
	Scaler  *cpufreq.SimScaler
	Cpufreq cpufreq.Paths

	// ACPI throttling control (a third unified technique).
	ACPI acpi.Paths

	// CStates is the cpuidle (sleep state) control.
	CStates cstates.Paths

	// Out-of-band interface.
	BMC *ipmi.BMC

	// Accounting.
	Meter *power.Meter

	gen     workload.Generator
	util    float64
	elapsed time.Duration
	baseW   float64

	// mu serializes Step with the BMC's sensor closures: the IPMI
	// server handles connections on their own goroutines, so an
	// out-of-band read must see a consistent between-steps snapshot of
	// the thermal/CPU/fan state rather than race the integrators.
	mu sync.Mutex

	// jiffy accounting backing the /proc/stat file (USER_HZ = 100).
	busyJiffies float64
	idleJiffies float64
	// steps counts Step calls; it keys the sensor's conversion ticks.
	// Atomic: the tick source is read from inside Step's own call chain
	// (chip → sensor) as well as from BMC goroutines, so it cannot take
	// mu.
	steps atomic.Uint64

	// hardware thermal protection state.
	protectC      float64
	protectHystC  float64
	protected     bool
	emergencies   uint64
	protectedTime time.Duration
}

// New builds a node from cfg.
func New(cfg Config) (*Node, error) {
	if cfg.CPU.Table == nil {
		cfg.CPU = cpu.DefaultConfig()
	}
	if cfg.Fan.MaxRPM == 0 {
		cfg.Fan = fan.Default()
	}
	if cfg.Thermal.CdieJPerK == 0 {
		cfg.Thermal = thermal.Default()
	}
	if cfg.BaseW == 0 {
		cfg.BaseW = power.DefaultBaseW
	}
	cfg.Thermal.AmbientC += cfg.AmbientOffsetC

	seedSrc := rng.New(cfg.Seed)
	meter := cfg.Meter
	if meter == nil {
		meter = &power.Meter{}
	}
	meter.Reset()
	n := &Node{
		Name:    cfg.Name,
		CPU:     cpu.New(cfg.CPU),
		Fan:     fan.New(cfg.Fan, cfg.InitialDuty),
		Thermal: thermal.NewAt(cfg.Thermal, cfg.ThermalState),
		Meter:   meter,
	}
	n.Sensor = sensor.New(cfg.Sensor, sensor.SourceFunc(n.Thermal.DieC), seedSrc.Split())
	// Noise is keyed to the step counter: every consumer of the sensor
	// (hwmon, ADT7467, BMC, probes) sees the same conversion within a
	// step, so adding observers never perturbs a run.
	n.Sensor.SetTickSource(func() uint64 { return n.steps.Load() })

	// i2c bus with the fan controller.
	n.Bus = i2c.NewBus()
	n.Chip = adt7467.NewChip(n.Sensor, n.Fan)
	if err := n.Bus.Attach(adt7467.DefaultAddr, n.Chip); err != nil {
		return nil, fmt.Errorf("node %s: %w", cfg.Name, err)
	}
	drv, err := adt7467.NewDriver(n.Bus, adt7467.DefaultAddr)
	if err != nil {
		return nil, fmt.Errorf("node %s: %w", cfg.Name, err)
	}
	n.Drv = drv

	// In-band: virtual sysfs with hwmon and cpufreq attribute files.
	n.FS = hwmon.NewFS()
	n.Hwmon = hwmon.MountADT7467(n.FS, 0, drv, n.Sensor, n.Fan)
	n.Scaler = cpufreq.NewSimScaler(n.CPU)
	n.Cpufreq = cpufreq.Mount(n.FS, 0, n.Scaler)
	n.ACPI = acpi.Mount(n.FS, 0, n.CPU)
	n.CStates = cstates.Mount(n.FS, 0, n.CPU)

	// Out-of-band: BMC with its own driver handle on the shared bus.
	bmcDrv, err := adt7467.NewDriver(n.Bus, adt7467.DefaultAddr)
	if err != nil {
		return nil, fmt.Errorf("node %s: bmc: %w", cfg.Name, err)
	}
	n.BMC = ipmi.NewBMC(bmcDrv)
	// Every repository closure takes n.mu: the BMC calls them from its
	// server goroutines, and the physical state they sample is mutated
	// by Step.
	sensors := []ipmi.SensorRecord{
		{Number: SensorCPUTemp, Name: "CPU Temp", Unit: "degrees C", Read: func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return n.Sensor.Read()
		}},
		{Number: SensorFanRPM, Name: "CPU Fan", Unit: "RPM", Read: func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return n.Fan.TachRPM()
		}},
		{Number: SensorSystemW, Name: "System Power", Unit: "Watts", Read: func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return n.breakdown().Total()
		}},
		{Number: SensorAmbientC, Name: "Inlet Temp", Unit: "degrees C", Read: func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return n.Thermal.AmbientC()
		}},
	}
	for _, rec := range sensors {
		if err := n.BMC.AddSensor(rec); err != nil {
			return nil, fmt.Errorf("node %s: %w", cfg.Name, err)
		}
	}

	// /proc/stat, for utilization-driven daemons (CPUSPEED). Format is
	// the kernel's: "cpu user nice system idle ..." in USER_HZ jiffies.
	n.FS.Register("/proc/stat", hwmon.FuncFile{
		ReadFn: func() (string, error) {
			busy := uint64(n.busyJiffies)
			idle := uint64(n.idleJiffies)
			return fmt.Sprintf("cpu  %d 0 0 %d 0 0 0\n", busy, idle), nil
		},
	})

	n.baseW = cfg.BaseW
	if cfg.ProtectC == 0 {
		cfg.ProtectC = 70
	}
	if cfg.ProtectHystC == 0 {
		cfg.ProtectHystC = 5
	}
	n.protectC = cfg.ProtectC
	n.protectHystC = cfg.ProtectHystC
	return n, nil
}

// AttachFaults subscribes the node's device models to a fault plane
// injector: the sensor (stuck/dropout/spike), the i2c bus (transient
// faults and NAK bursts, drawn from src — give the bus its own stream)
// and the fan (bearing degradation and stall). Wiring time only, before
// the first Step.
func (n *Node) AttachFaults(inj *faults.Injector, src *rng.Source) {
	n.Sensor.AttachInjector(inj)
	n.Bus.AttachInjector(inj, src)
	n.Fan.AttachInjector(inj)
}

// Protected reports whether hardware thermal protection is currently
// forcing the lowest P-state.
func (n *Node) Protected() bool { return n.protected }

// Emergencies returns how many times the hardware trip point was
// reached — the events the paper's proactive control exists to prevent.
func (n *Node) Emergencies() uint64 { return n.emergencies }

// ProtectedTime returns the cumulative time spent under hardware
// thermal protection.
func (n *Node) ProtectedTime() time.Duration { return n.protectedTime }

// SetGenerator attaches an open-loop utilization source; pass nil to
// control utilization manually with SetUtilization.
func (n *Node) SetGenerator(g workload.Generator) { n.gen = g }

// SetUtilization sets the demanded utilization directly (used by the
// cluster's SPMD executor).
func (n *Node) SetUtilization(u float64) { n.util = u }

// Utilization returns the utilization applied on the last step.
func (n *Node) Utilization() float64 { return n.util }

// Elapsed returns the node's accumulated simulated time.
func (n *Node) Elapsed() time.Duration { return n.elapsed }

func (n *Node) breakdown() power.Breakdown {
	return power.Breakdown{
		CPU:  n.CPU.Power(n.Thermal.DieC()),
		Fan:  n.Fan.Power(),
		Base: n.baseW,
	}
}

// Power returns the instantaneous wall-power breakdown.
func (n *Node) Power() power.Breakdown { return n.breakdown() }

// Step advances all device models by dt and returns the compute work
// retired (giga-cycles).
func (n *Node) Step(dt time.Duration) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.gen != nil {
		n.util = n.gen.Utilization(n.elapsed)
	}
	// Hardware thermal protection: at the trip point the silicon
	// clamps itself to the lowest P-state regardless of what any
	// software daemon wants, until the die cools past the hysteresis.
	die := n.Thermal.DieC()
	if !n.protected && die >= n.protectC {
		n.protected = true
		n.emergencies++
	}
	if n.protected {
		if die < n.protectC-n.protectHystC {
			n.protected = false
		} else {
			if last := len(n.CPU.Table()) - 1; n.CPU.PState() != last {
				n.CPU.SetPState(last)
			}
			n.protectedTime += dt
		}
	}
	n.CPU.SetUtilization(n.util)
	work := n.CPU.Step(dt)

	b := n.breakdown()
	n.Chip.Step(dt) // fan controller monitoring cycle (auto-mode curve)
	n.Fan.Step(dt)
	n.Thermal.Step(dt, b.CPU, n.Fan.Airflow())
	n.Meter.Sample(b, dt)
	n.Scaler.Account(dt)
	n.busyJiffies += n.util * dt.Seconds() * 100
	n.idleJiffies += (1 - n.util) * dt.Seconds() * 100
	n.elapsed += dt
	n.steps.Add(1)
	return work
}

// Settle initializes the node at thermal equilibrium for the given
// utilization, as a machine that has been idling (or running) long
// before the experiment starts.
func (n *Node) Settle(util float64) {
	n.util = util
	n.CPU.SetUtilization(util)
	// Iterate: power depends on temperature (leakage), temperature on
	// fan speed, and in auto mode fan speed on temperature; a few
	// rounds converge.
	for i := 0; i < 8; i++ {
		n.Chip.Step(0) // auto-mode curve may move the duty command
		for j := 0; j < 50; j++ {
			n.Fan.Step(time.Second) // snap rotor to commanded speed
		}
		p := n.CPU.Power(n.Thermal.DieC())
		n.Thermal.Settle(p, n.Fan.Airflow())
	}
}

// TrueDieC returns the physical (noise-free) die temperature, for
// verification against sensor readings.
func (n *Node) TrueDieC() float64 { return n.Thermal.DieC() }
