package node

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"thermctl/internal/hwmon"
	"thermctl/internal/ipmi"
	"thermctl/internal/workload"
)

func newNode(t *testing.T) *Node {
	t.Helper()
	n, err := New(DefaultConfig("test", 42))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewWiresEverything(t *testing.T) {
	n := newNode(t)
	if n.CPU == nil || n.Fan == nil || n.Thermal == nil || n.FS == nil || n.BMC == nil {
		t.Fatal("missing subsystem")
	}
	// hwmon files exist and read plausibly.
	v, err := n.FS.ReadInt(n.Hwmon.TempInput)
	if err != nil {
		t.Fatal(err)
	}
	if v < 20000 || v > 40000 {
		t.Errorf("boot temp1_input = %d m°C, want near ambient", v)
	}
	// cpufreq files exist.
	f, err := n.FS.ReadInt(n.Cpufreq.CurFreq)
	if err != nil || f != 2400000 {
		t.Errorf("scaling_cur_freq = %d, %v", f, err)
	}
}

func TestSettleIdleOperatingPoint(t *testing.T) {
	n := newNode(t)
	n.Settle(0)
	got := n.TrueDieC()
	if got < 33 || got > 43 {
		t.Errorf("idle settled die = %.1f °C, want high 30s", got)
	}
}

func TestSettleBusyInAutoModeStabilizes(t *testing.T) {
	n := newNode(t)
	n.Settle(1)
	settled := n.TrueDieC()
	// Under the chip's automatic fan curve a busy Athlon64 lands
	// somewhere in the 50s; exact value depends on the curve/RC balance.
	if settled < 45 || settled > 68 {
		t.Errorf("busy auto-mode steady state = %.1f °C, want 45..68", settled)
	}
	// Stepping from the settled state should not drift more than noise.
	n.SetGenerator(workload.Constant(1))
	before := n.TrueDieC()
	for i := 0; i < 400; i++ {
		n.Step(250 * time.Millisecond)
	}
	if d := math.Abs(n.TrueDieC() - before); d > 1.5 {
		t.Errorf("settled state drifted %.2f °C over 100 s", d)
	}
}

func TestStepHeatsUnderLoad(t *testing.T) {
	n := newNode(t)
	n.Settle(0)
	cold := n.TrueDieC()
	n.SetGenerator(workload.NewCPUBurn(nil))
	for i := 0; i < 240; i++ { // 60 s
		n.Step(250 * time.Millisecond)
	}
	if n.TrueDieC() < cold+5 {
		t.Errorf("die rose only %.1f °C after 60 s of cpu-burn", n.TrueDieC()-cold)
	}
}

func TestPowerMeterAccumulates(t *testing.T) {
	n := newNode(t)
	n.Settle(1)
	n.SetGenerator(workload.Constant(1))
	for i := 0; i < 400; i++ {
		n.Step(250 * time.Millisecond)
	}
	avg := n.Meter.AverageW()
	if avg < 95 || avg > 125 {
		t.Errorf("busy node average power = %.1f W, want 95..125 (paper's loaded node ≈100)", avg)
	}
	if n.Meter.Elapsed() != 100*time.Second {
		t.Errorf("metered %v, want 100 s", n.Meter.Elapsed())
	}
}

func TestInBandDVFSThroughSysfs(t *testing.T) {
	n := newNode(t)
	if err := n.FS.WriteInt(n.Cpufreq.SetSpeed, 1800000); err != nil {
		t.Fatal(err)
	}
	if n.CPU.FreqGHz() != 1.8 {
		t.Errorf("CPU at %v GHz after sysfs write", n.CPU.FreqGHz())
	}
}

func TestInBandFanThroughSysfs(t *testing.T) {
	n := newNode(t)
	if err := n.FS.WriteInt(n.Hwmon.PWMEnable, hwmon.PWMEnableManual); err != nil {
		t.Fatal(err)
	}
	if err := n.FS.WriteInt(n.Hwmon.PWM, 255); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		n.Step(250 * time.Millisecond)
	}
	if n.Fan.RPM() < 4200 {
		t.Errorf("fan RPM = %v after full-duty sysfs write", n.Fan.RPM())
	}
}

func TestOutOfBandFanThroughBMC(t *testing.T) {
	n := newNode(t)
	c := ipmi.NewClient(ipmi.Local{H: n.BMC})
	if err := c.SetFanManual(true); err != nil {
		t.Fatal(err)
	}
	if err := c.SetFanDuty(90); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		n.Step(250 * time.Millisecond)
	}
	if n.Fan.Duty() < 89 {
		t.Errorf("fan duty = %v after BMC command", n.Fan.Duty())
	}
	// And the in-band view agrees: pwm1_enable reads manual.
	v, err := n.FS.ReadInt(n.Hwmon.PWMEnable)
	if err != nil || v != hwmon.PWMEnableManual {
		t.Errorf("pwm1_enable after OOB switch = %d, %v", v, err)
	}
}

func TestBMCSensorsReadPlausibly(t *testing.T) {
	n := newNode(t)
	n.Settle(0.5)
	c := ipmi.NewClient(ipmi.Local{H: n.BMC})
	temp, err := c.ReadSensor(SensorCPUTemp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(temp-n.TrueDieC()) > 1 {
		t.Errorf("BMC temp %v vs true %v", temp, n.TrueDieC())
	}
	if w, err := c.ReadSensor(SensorSystemW); err != nil || w < 40 || w > 130 {
		t.Errorf("BMC system power = %v, %v", w, err)
	}
	if a, err := c.ReadSensor(SensorAmbientC); err != nil || a < 20 || a > 35 {
		t.Errorf("BMC ambient = %v, %v", a, err)
	}
}

func TestSensorTracksPhysicalTemp(t *testing.T) {
	n := newNode(t)
	n.Settle(1)
	read := n.Sensor.Read()
	if math.Abs(read-n.TrueDieC()) > 1 {
		t.Errorf("sensor %v vs physical %v", read, n.TrueDieC())
	}
}

func TestAmbientOffset(t *testing.T) {
	cfg := DefaultConfig("hot-spot", 1)
	cfg.AmbientOffsetC = 6
	hot, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cool := newNode(t)
	hot.Settle(0)
	cool.Settle(0)
	if d := hot.TrueDieC() - cool.TrueDieC(); d < 4 {
		t.Errorf("ambient offset moved idle temp by only %.1f °C", d)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		n, err := New(DefaultConfig("d", 7))
		if err != nil {
			t.Fatal(err)
		}
		n.Settle(0)
		n.SetGenerator(workload.NewCPUBurn(nil))
		for i := 0; i < 200; i++ {
			n.Step(250 * time.Millisecond)
		}
		return n.Sensor.Read()
	}
	if run() != run() {
		t.Error("identical configs diverged")
	}
}

func TestThermalProtectionTripsAndReleases(t *testing.T) {
	cfg := DefaultConfig("prot", 31)
	cfg.ProtectC = 55 // low trip point so cpu-burn at low duty reaches it
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	// Fan pinned low: the die will run past the trip point.
	if err := n.FS.WriteInt(n.Hwmon.PWMEnable, hwmon.PWMEnableManual); err != nil {
		t.Fatal(err)
	}
	if err := n.FS.WriteInt(n.Hwmon.PWM, 26); err != nil { // ≈10%
		t.Fatal(err)
	}
	n.SetGenerator(workload.NewCPUBurn(nil))
	for i := 0; i < 1600; i++ { // 400 s
		n.Step(250 * time.Millisecond)
	}
	if n.Emergencies() == 0 {
		t.Fatal("trip point never reached despite the pinned fan")
	}
	if n.ProtectedTime() == 0 {
		t.Error("no protected time accumulated")
	}
	// While protected the hardware clamps to the lowest P-state.
	if n.Protected() && n.CPU.FreqGHz() != 1.0 {
		t.Errorf("protected but at %v GHz", n.CPU.FreqGHz())
	}
	// At 1.0 GHz with even a weak fan the die cools below 55-5=50 and
	// protection must eventually release.
	for i := 0; i < 2400 && n.Protected(); i++ {
		n.Step(250 * time.Millisecond)
	}
	if n.Protected() {
		t.Error("protection never released at the lowest P-state")
	}
}

func TestProtectionOverridesDaemonWrites(t *testing.T) {
	cfg := DefaultConfig("prot2", 33)
	cfg.ProtectC = 55
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	_ = n.FS.WriteInt(n.Hwmon.PWMEnable, hwmon.PWMEnableManual)
	_ = n.FS.WriteInt(n.Hwmon.PWM, 26)
	n.SetGenerator(workload.NewCPUBurn(nil))
	for i := 0; i < 1600 && !n.Protected(); i++ {
		n.Step(250 * time.Millisecond)
	}
	if !n.Protected() {
		t.Skip("did not trip")
	}
	// A daemon writes full speed; the silicon clamps it back next step.
	if err := n.FS.WriteInt(n.Cpufreq.SetSpeed, 2400000); err != nil {
		t.Fatal(err)
	}
	n.Step(250 * time.Millisecond)
	if n.Protected() && n.CPU.FreqGHz() != 1.0 {
		t.Errorf("daemon write survived hardware protection: %v GHz", n.CPU.FreqGHz())
	}
}

func TestFanFailureDetectableAndHot(t *testing.T) {
	n := newNode(t)
	n.Settle(1)
	before := n.TrueDieC()
	n.Fan.SetFailed(true)
	for i := 0; i < 400; i++ { // 100 s
		n.Step(250 * time.Millisecond)
	}
	if n.Fan.RPM() > 1 {
		t.Errorf("failed fan still spinning at %v RPM", n.Fan.RPM())
	}
	// The tach stall is visible in-band and out-of-band.
	rpm, err := n.FS.ReadInt(n.Hwmon.FanInput)
	if err != nil || rpm != 0 {
		t.Errorf("fan1_input = %d, %v; want 0 for a stalled fan", rpm, err)
	}
	if n.TrueDieC() < before+4 {
		t.Errorf("die rose only %.1f °C after fan failure", n.TrueDieC()-before)
	}
	// Recovery: un-fail and the rotor spins back up.
	n.Fan.SetFailed(false)
	for i := 0; i < 40; i++ {
		n.Step(250 * time.Millisecond)
	}
	if n.Fan.RPM() < 100 {
		t.Error("fan did not recover after repair")
	}
}

func TestACPIThrottlingMounted(t *testing.T) {
	n := newNode(t)
	if err := n.FS.WriteFile(n.ACPI.Throttling, "4"); err != nil {
		t.Fatal(err)
	}
	if got := n.CPU.Throttle(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("throttle = %v after T4 write", got)
	}
}

func BenchmarkNodeStep(b *testing.B) {
	n, err := New(DefaultConfig("bench", 1))
	if err != nil {
		b.Fatal(err)
	}
	n.SetGenerator(workload.Constant(0.8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(250 * time.Millisecond)
	}
}

func TestNodeAccountsResidency(t *testing.T) {
	// The node credits residency on every step, so an end-to-end run's
	// time_in_state sums to the elapsed time.
	n, err := New(DefaultConfig("tis", 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		n.Step(250 * time.Millisecond)
	}
	body, err := n.FS.ReadFile(n.Cpufreq.TimeInState)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var khz, ticks int64
		if _, err := fmt.Sscanf(line, "%d %d", &khz, &ticks); err != nil {
			t.Fatalf("bad line %q", line)
		}
		total += ticks
	}
	if total != 1000 { // 10 s = 1000 ticks
		t.Errorf("total residency %d ticks, want 1000", total)
	}
}
