package hwmon

import (
	"fmt"
	"math"

	"thermctl/internal/adt7467"
	"thermctl/internal/fan"
	"thermctl/internal/sensor"
)

// PWM enable values, following the Linux hwmon ABI for pwm[1-*]_enable.
const (
	PWMEnableFullSpeed = 0 // no control: fan at full speed
	PWMEnableManual    = 1 // manual: userspace writes pwm1
	PWMEnableAuto      = 2 // automatic: chip's static curve
)

// Chip bundles the attribute paths of one mounted hwmon chip.
type Chip struct {
	// Dir is the chip directory, e.g. /sys/class/hwmon/hwmon0.
	Dir string
	// TempInput is temp1_input (millidegrees C).
	TempInput string
	// TempMax is temp1_max (millidegrees C): the chip's high limit.
	TempMax string
	// TempMaxAlarm is temp1_max_alarm: 1 when the limit was violated
	// since the last read (the chip's latched interrupt status).
	TempMaxAlarm string
	// PWM is pwm1 (0..255 duty).
	PWM string
	// PWMEnable is pwm1_enable (see PWMEnable* constants).
	PWMEnable string
	// FanInput is fan1_input (RPM).
	FanInput string
}

// MountADT7467 lays out the standard hwmon attribute files for an
// ADT7467 driven through its i2c driver, at /sys/class/hwmon/hwmon<idx>:
//
//	name         "adt7467"
//	temp1_input  die temperature in millidegrees (from the hwmon sensor,
//	             which has the lm-sensors resolution, not the chip's
//	             whole-degree register)
//	temp1_label  "CPU"
//	pwm1         duty 0..255 (writes require pwm1_enable == 1)
//	pwm1_enable  1 manual / 2 automatic
//	fan1_input   tach RPM
//
// This is the file interface the paper's daemons use in-band.
func MountADT7467(fs *FS, idx int, drv *adt7467.Driver, sens *sensor.Sensor, f *fan.Fan) Chip {
	dir := fmt.Sprintf("/sys/class/hwmon/hwmon%d", idx)
	c := Chip{
		Dir:          dir,
		TempInput:    dir + "/temp1_input",
		TempMax:      dir + "/temp1_max",
		TempMaxAlarm: dir + "/temp1_max_alarm",
		PWM:          dir + "/pwm1",
		PWMEnable:    dir + "/pwm1_enable",
		FanInput:     dir + "/fan1_input",
	}
	fs.Register(dir+"/name", StaticFile("adt7467\n"))
	fs.Register(dir+"/temp1_label", StaticFile("CPU\n"))
	// temp1_input surfaces a failed conversion (sensor dropout fault) as
	// a read error, the EIO a dead sensor produces on real sysfs, so
	// in-band controllers can distinguish "no data" from a bogus 0 °C.
	fs.Register(c.TempInput, IntFuncFile{ReadFn: sens.CheckedMillidegrees})
	// temp1_max / temp1_max_alarm bridge the chip's limit registers and
	// latched interrupt status into the standard hwmon names.
	fs.Register(c.TempMax, IntFile{
		Min: -128000, Max: 127000,
		Get: func() int64 {
			_, hi, err := drv.TempLimits()
			if err != nil {
				return 0
			}
			return int64(hi * 1000)
		},
		Set: func(v int64) error {
			lo, _, err := drv.TempLimits()
			if err != nil {
				return err
			}
			return drv.SetTempLimits(lo, float64(v)/1000)
		},
	})
	fs.Register(c.TempMaxAlarm, IntFile{
		Get: func() int64 {
			a, err := drv.TempAlarm()
			if err != nil || !a {
				return 0
			}
			return 1
		},
	})

	fs.Register(c.FanInput, IntFile{
		Get: func() int64 {
			rpm, err := drv.FanRPM()
			if err != nil {
				return 0
			}
			return int64(math.Round(rpm))
		},
	})

	// pwm1_enable mirrors the chip's mode bits; writing it flips the
	// chip between manual and automatic through the i2c driver.
	fs.Register(c.PWMEnable, IntFile{
		Min: 1, Max: 2,
		Get: func() int64 {
			m, err := drv.Manual()
			if err != nil {
				return 0
			}
			if m {
				return PWMEnableManual
			}
			return PWMEnableAuto
		},
		Set: func(v int64) error {
			return drv.SetManual(v == PWMEnableManual)
		},
	})

	fs.Register(c.PWM, IntFile{
		Min: 0, Max: 255,
		Get: func() int64 {
			d, err := drv.Duty()
			if err != nil {
				return 0
			}
			return int64(math.Round(d * 255 / 100))
		},
		Set: func(v int64) error {
			if !manualMode(drv) {
				// The Linux ADT746x driver rejects duty writes while
				// the chip owns the fan.
				return fmt.Errorf("%w: pwm1 write while pwm1_enable=2", ErrPermission)
			}
			return drv.SetDuty(float64(v) * 100 / 255)
		},
	})
	return c
}

// manualMode asks the driver whether PWM1 is host-controlled. Kept as a
// helper so the hwmon layer never caches mode state: the BMC may flip
// the chip out-of-band between our reads.
func manualMode(drv *adt7467.Driver) bool {
	m, err := drv.Manual()
	return err == nil && m
}
