// Package hwmon provides a virtual sysfs: an in-memory file tree with
// the read/write semantics of Linux's /sys, plus helpers that lay out
// the hwmon and cpufreq attribute files the paper's in-band tooling
// (lm-sensors, the fan driver, CPUSPEED) consumes.
//
// Every controller in this repository talks to the hardware through
// these file paths — reading "temp1_input" as millidegrees, writing
// "pwm1" as 0..255 — rather than calling simulator methods directly.
// That keeps the control code one string constant away from running
// against the real /sys on a Linux host, which is the portability
// property the paper claims for its framework.
package hwmon

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Error values mirroring the errno a real sysfs access would produce.
var (
	ErrNotExist   = errors.New("hwmon: no such file or directory")
	ErrIsDir      = errors.New("hwmon: is a directory")
	ErrPermission = errors.New("hwmon: permission denied")
	ErrInvalid    = errors.New("hwmon: invalid argument")
)

// File is one sysfs attribute. Reads return the full content (sysfs
// attributes are read whole); writes replace it.
type File interface {
	Read() (string, error)
	Write(s string) error
}

// FuncFile adapts read/write closures to File. A nil ReadFn makes the
// file write-only; a nil WriteFn makes it read-only (EACCES on write),
// matching sysfs attribute permission bits.
type FuncFile struct {
	ReadFn  func() (string, error)
	WriteFn func(string) error
}

// Read implements File.
func (f FuncFile) Read() (string, error) {
	if f.ReadFn == nil {
		return "", ErrPermission
	}
	return f.ReadFn()
}

// Write implements File.
func (f FuncFile) Write(s string) error {
	if f.WriteFn == nil {
		return ErrPermission
	}
	return f.WriteFn(s)
}

// IntFuncFile adapts integer-producing closures (which may fail, e.g.
// on a sensor conversion error) to File. It implements IntReader, so
// ReadInt on such an attribute skips the decimal round-trip — the
// fast path for the control plane's per-sample temp_input reads.
type IntFuncFile struct {
	ReadFn  func() (int64, error)
	WriteFn func(int64) error
}

// Read implements File.
func (f IntFuncFile) Read() (string, error) {
	if f.ReadFn == nil {
		return "", ErrPermission
	}
	v, err := f.ReadFn()
	if err != nil {
		return "", err
	}
	//thermlint:allow hotalloc -- string Read is the sysfs text slow path; hot samplers use ReadInt
	return strconv.FormatInt(v, 10) + "\n", nil
}

// ReadInt implements IntReader.
func (f IntFuncFile) ReadInt() (int64, error) {
	if f.ReadFn == nil {
		return 0, ErrPermission
	}
	return f.ReadFn()
}

// WriteInt implements IntWriter, skipping the decimal round-trip.
func (f IntFuncFile) WriteInt(v int64) error {
	if f.WriteFn == nil {
		return ErrPermission
	}
	return f.WriteFn(v)
}

// Write implements File.
func (f IntFuncFile) Write(s string) error {
	if f.WriteFn == nil {
		return ErrPermission
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return fmt.Errorf("%w: %q", ErrInvalid, s)
	}
	return f.WriteFn(v)
}

// StaticFile is a read-only constant attribute (e.g. a "name" file).
type StaticFile string

// Read implements File.
func (s StaticFile) Read() (string, error) { return string(s), nil }

// Write implements File.
func (StaticFile) Write(string) error { return ErrPermission }

// IntFile exposes an integer through get/set closures, formatting and
// parsing in the newline-terminated decimal form sysfs uses. Min and
// Max bound accepted writes (both zero means unbounded).
type IntFile struct {
	Get      func() int64
	Set      func(int64) error
	Min, Max int64
}

// Read implements File.
func (f IntFile) Read() (string, error) {
	if f.Get == nil {
		return "", ErrPermission
	}
	//thermlint:allow hotalloc -- string Read is the sysfs text slow path; hot samplers use ReadInt
	return strconv.FormatInt(f.Get(), 10) + "\n", nil
}

// ReadInt implements IntReader, skipping the decimal round-trip.
func (f IntFile) ReadInt() (int64, error) {
	if f.Get == nil {
		return 0, ErrPermission
	}
	return f.Get(), nil
}

// Write implements File.
func (f IntFile) Write(s string) error {
	if f.Set == nil {
		return ErrPermission
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return fmt.Errorf("%w: %q", ErrInvalid, s)
	}
	if f.Min != 0 || f.Max != 0 {
		if v < f.Min || v > f.Max {
			return fmt.Errorf("%w: %d outside [%d, %d]", ErrInvalid, v, f.Min, f.Max)
		}
	}
	return f.Set(v)
}

// WriteInt implements IntWriter, enforcing the same bounds as Write
// without the decimal round-trip.
func (f IntFile) WriteInt(v int64) error {
	if f.Set == nil {
		return ErrPermission
	}
	if f.Min != 0 || f.Max != 0 {
		if v < f.Min || v > f.Max {
			return fmt.Errorf("%w: %d outside [%d, %d]", ErrInvalid, v, f.Min, f.Max)
		}
	}
	return f.Set(v)
}

// FS is the virtual sysfs tree. Methods are safe for concurrent use.
type FS struct {
	mu    sync.RWMutex
	files map[string]File // cleaned absolute path → attribute
	dirs  map[string]bool // cleaned absolute path → exists
}

// NewFS returns an empty tree containing only "/".
func NewFS() *FS {
	return &FS{
		files: make(map[string]File),
		dirs:  map[string]bool{"/": true},
	}
}

func clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// Register installs an attribute file at p, creating parent directories.
// Registering over an existing file replaces it.
func (fs *FS) Register(p string, f File) {
	p = clean(p)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for d := path.Dir(p); ; d = path.Dir(d) {
		fs.dirs[d] = true
		if d == "/" {
			break
		}
	}
	fs.files[p] = f
}

// Unregister removes the attribute at p, if present. Empty parent
// directories are kept; sysfs directories outlive their attributes.
func (fs *FS) Unregister(p string) {
	p = clean(p)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, p)
}

// ReadFile returns the content of the attribute at p.
func (fs *FS) ReadFile(p string) (string, error) {
	p = clean(p)
	fs.mu.RLock()
	f, ok := fs.files[p]
	isDir := fs.dirs[p]
	fs.mu.RUnlock()
	if !ok {
		if isDir {
			return "", fmt.Errorf("%w: %s", ErrIsDir, p)
		}
		return "", fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return f.Read()
}

// WriteFile writes s to the attribute at p.
func (fs *FS) WriteFile(p, s string) error {
	p = clean(p)
	fs.mu.RLock()
	f, ok := fs.files[p]
	isDir := fs.dirs[p]
	fs.mu.RUnlock()
	if !ok {
		if isDir {
			return fmt.Errorf("%w: %s", ErrIsDir, p)
		}
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return f.Write(s)
}

// IntReader is implemented by attributes whose value is natively an
// integer. ReadInt uses it to skip the format-then-parse string
// round-trip on the control plane's hottest read (the sample path
// hits temp_input every period for every binding).
type IntReader interface {
	ReadInt() (int64, error)
}

// ReadInt reads the attribute at p as a decimal integer.
func (fs *FS) ReadInt(p string) (int64, error) {
	p = clean(p)
	fs.mu.RLock()
	f, ok := fs.files[p]
	isDir := fs.dirs[p]
	fs.mu.RUnlock()
	if !ok {
		if isDir {
			return 0, fmt.Errorf("%w: %s", ErrIsDir, p)
		}
		return 0, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if ir, ok := f.(IntReader); ok {
		return ir.ReadInt()
	}
	s, err := f.Read()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s contains %q", ErrInvalid, p, s)
	}
	return v, nil
}

// IntWriter is the write-side twin of IntReader: attributes whose
// value is natively an integer accept it without the format-then-parse
// decimal round-trip. WriteInt uses it on the actuator write path —
// duty and frequency writes land here on every decision.
type IntWriter interface {
	WriteInt(int64) error
}

// WriteInt writes v to the attribute at p in decimal, taking the
// IntWriter fast path when the attribute supports it.
func (fs *FS) WriteInt(p string, v int64) error {
	fs.mu.RLock()
	f, ok := fs.files[clean(p)]
	fs.mu.RUnlock()
	if ok {
		if iw, isInt := f.(IntWriter); isInt {
			return iw.WriteInt(v)
		}
	}
	//thermlint:allow hotalloc -- slow path for string attributes only; every integer attribute implements IntWriter
	return fs.WriteFile(p, strconv.FormatInt(v, 10))
}

// List returns the immediate children of directory p (files and
// subdirectories), sorted.
func (fs *FS) List(p string) ([]string, error) {
	p = clean(p)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if !fs.dirs[p] {
		if _, ok := fs.files[p]; ok {
			return nil, fmt.Errorf("%w: %s is a file", ErrInvalid, p)
		}
		return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	seen := map[string]bool{}
	collect := func(full string) {
		if full == p {
			return
		}
		rel := strings.TrimPrefix(full, p)
		if p != "/" {
			if !strings.HasPrefix(rel, "/") {
				return
			}
			rel = rel[1:]
		} else {
			rel = strings.TrimPrefix(full, "/")
		}
		if rel == "" {
			return
		}
		if i := strings.IndexByte(rel, '/'); i >= 0 {
			rel = rel[:i]
		}
		seen[rel] = true
	}
	for f := range fs.files {
		if strings.HasPrefix(f, p) {
			collect(f)
		}
	}
	for d := range fs.dirs {
		if strings.HasPrefix(d, p) {
			collect(d)
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Exists reports whether p is a registered file or directory.
func (fs *FS) Exists(p string) bool {
	p = clean(p)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if _, ok := fs.files[p]; ok {
		return true
	}
	return fs.dirs[p]
}
