package hwmon

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegisterAndRead(t *testing.T) {
	fs := NewFS()
	fs.Register("/sys/class/hwmon/hwmon0/name", StaticFile("adt7467\n"))
	got, err := fs.ReadFile("/sys/class/hwmon/hwmon0/name")
	if err != nil {
		t.Fatal(err)
	}
	if got != "adt7467\n" {
		t.Errorf("read %q", got)
	}
}

func TestReadMissingFile(t *testing.T) {
	fs := NewFS()
	if _, err := fs.ReadFile("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
	if err := fs.WriteFile("/nope", "x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("write err = %v, want ErrNotExist", err)
	}
}

func TestReadDirectoryFails(t *testing.T) {
	fs := NewFS()
	fs.Register("/a/b/file", StaticFile("x"))
	if _, err := fs.ReadFile("/a/b"); !errors.Is(err, ErrIsDir) {
		t.Errorf("reading a directory: err = %v, want ErrIsDir", err)
	}
}

func TestStaticFileReadOnly(t *testing.T) {
	fs := NewFS()
	fs.Register("/f", StaticFile("v"))
	if err := fs.WriteFile("/f", "w"); !errors.Is(err, ErrPermission) {
		t.Errorf("err = %v, want ErrPermission", err)
	}
}

func TestIntFileRoundTrip(t *testing.T) {
	var stored int64 = 42
	fs := NewFS()
	fs.Register("/v", IntFile{
		Get: func() int64 { return stored },
		Set: func(v int64) error { stored = v; return nil },
	})
	if v, err := fs.ReadInt("/v"); err != nil || v != 42 {
		t.Fatalf("ReadInt = %v, %v", v, err)
	}
	if err := fs.WriteInt("/v", 77); err != nil {
		t.Fatal(err)
	}
	if stored != 77 {
		t.Errorf("stored = %d, want 77", stored)
	}
	// Whitespace and newline tolerated like sysfs.
	if err := fs.WriteFile("/v", " 12\n"); err != nil {
		t.Fatal(err)
	}
	if stored != 12 {
		t.Errorf("stored = %d, want 12", stored)
	}
}

func TestIntFileBounds(t *testing.T) {
	var stored int64
	fs := NewFS()
	fs.Register("/pwm", IntFile{
		Min: 0, Max: 255,
		Get: func() int64 { return stored },
		Set: func(v int64) error { stored = v; return nil },
	})
	if err := fs.WriteInt("/pwm", 300); !errors.Is(err, ErrInvalid) {
		t.Errorf("out-of-range write err = %v, want ErrInvalid", err)
	}
	if err := fs.WriteInt("/pwm", -1); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative write err = %v, want ErrInvalid", err)
	}
	if err := fs.WriteInt("/pwm", 255); err != nil {
		t.Errorf("boundary write failed: %v", err)
	}
}

func TestIntFileGarbage(t *testing.T) {
	fs := NewFS()
	fs.Register("/v", IntFile{Get: func() int64 { return 0 }, Set: func(int64) error { return nil }})
	if err := fs.WriteFile("/v", "not-a-number"); !errors.Is(err, ErrInvalid) {
		t.Errorf("garbage write err = %v, want ErrInvalid", err)
	}
}

func TestFuncFilePermissions(t *testing.T) {
	fs := NewFS()
	fs.Register("/ro", FuncFile{ReadFn: func() (string, error) { return "x", nil }})
	fs.Register("/wo", FuncFile{WriteFn: func(string) error { return nil }})
	if err := fs.WriteFile("/ro", "y"); !errors.Is(err, ErrPermission) {
		t.Error("write to read-only FuncFile succeeded")
	}
	if _, err := fs.ReadFile("/wo"); !errors.Is(err, ErrPermission) {
		t.Error("read of write-only FuncFile succeeded")
	}
}

func TestListChildren(t *testing.T) {
	fs := NewFS()
	fs.Register("/sys/class/hwmon/hwmon0/name", StaticFile("a"))
	fs.Register("/sys/class/hwmon/hwmon0/temp1_input", StaticFile("b"))
	fs.Register("/sys/class/hwmon/hwmon1/name", StaticFile("c"))
	got, err := fs.List("/sys/class/hwmon")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hwmon0", "hwmon1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("List = %v, want %v", got, want)
	}
	got, err = fs.List("/sys/class/hwmon/hwmon0")
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"name", "temp1_input"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("List = %v, want %v", got, want)
	}
}

func TestListRoot(t *testing.T) {
	fs := NewFS()
	fs.Register("/sys/x", StaticFile("a"))
	fs.Register("/proc/y", StaticFile("b"))
	got, err := fs.List("/")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"proc", "sys"}) {
		t.Errorf("List(/) = %v", got)
	}
}

func TestListMissingAndFile(t *testing.T) {
	fs := NewFS()
	fs.Register("/a/f", StaticFile("x"))
	if _, err := fs.List("/zzz"); !errors.Is(err, ErrNotExist) {
		t.Errorf("List missing: %v", err)
	}
	if _, err := fs.List("/a/f"); !errors.Is(err, ErrInvalid) {
		t.Errorf("List of a file: %v", err)
	}
}

func TestListDoesNotLeakSiblingPrefix(t *testing.T) {
	fs := NewFS()
	fs.Register("/sys/ab/x", StaticFile("1"))
	fs.Register("/sys/abc/y", StaticFile("2"))
	got, err := fs.List("/sys/ab")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("List(/sys/ab) = %v, want [x] (abc must not leak in)", got)
	}
}

func TestUnregister(t *testing.T) {
	fs := NewFS()
	fs.Register("/a/f", StaticFile("x"))
	fs.Unregister("/a/f")
	if _, err := fs.ReadFile("/a/f"); !errors.Is(err, ErrNotExist) {
		t.Error("unregistered file still readable")
	}
	if !fs.Exists("/a") {
		t.Error("directory removed with its last file")
	}
}

func TestPathCleaning(t *testing.T) {
	fs := NewFS()
	fs.Register("sys//class/../class/hwmon/f", StaticFile("x"))
	if _, err := fs.ReadFile("/sys/class/hwmon/f"); err != nil {
		t.Errorf("cleaned path not found: %v", err)
	}
	if _, err := fs.ReadFile("/sys/class/hwmon/../hwmon/f"); err != nil {
		t.Errorf("read with dirty path failed: %v", err)
	}
}

func TestExists(t *testing.T) {
	fs := NewFS()
	fs.Register("/a/b/c", StaticFile("x"))
	for _, p := range []string{"/", "/a", "/a/b", "/a/b/c"} {
		if !fs.Exists(p) {
			t.Errorf("Exists(%q) = false", p)
		}
	}
	if fs.Exists("/a/b/c/d") {
		t.Error("Exists of nonexistent path = true")
	}
}

func TestRoundTripProperty(t *testing.T) {
	fs := NewFS()
	var cell string
	fs.Register("/cell", FuncFile{
		ReadFn:  func() (string, error) { return cell, nil },
		WriteFn: func(s string) error { cell = s; return nil },
	})
	if err := quick.Check(func(s string) bool {
		if strings.ContainsRune(s, 0) {
			return true // sysfs attributes are text; skip NULs
		}
		if err := fs.WriteFile("/cell", s); err != nil {
			return false
		}
		got, err := fs.ReadFile("/cell")
		return err == nil && got == s
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	fs := NewFS()
	var v int64
	fs.Register("/v", IntFile{Get: func() int64 { return v }, Set: func(x int64) error { v = x; return nil }})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				fs.Register(fmt.Sprintf("/g/%d", i), StaticFile("x"))
				_, _ = fs.ReadFile("/v")
				_, _ = fs.List("/")
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func BenchmarkReadFile(b *testing.B) {
	fs := NewFS()
	fs.Register("/sys/class/hwmon/hwmon0/temp1_input", IntFile{Get: func() int64 { return 51250 }})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = fs.ReadInt("/sys/class/hwmon/hwmon0/temp1_input")
	}
}

func TestIntFuncFileRoundTrip(t *testing.T) {
	var stored int64 = 38500
	var fail error
	fs := NewFS()
	fs.Register("/t", IntFuncFile{
		ReadFn:  func() (int64, error) { return stored, fail },
		WriteFn: func(v int64) error { stored = v; return nil },
	})
	// The string view keeps the sysfs newline-terminated decimal form.
	if s, err := fs.ReadFile("/t"); err != nil || s != "38500\n" {
		t.Fatalf("ReadFile = %q, %v", s, err)
	}
	// ReadInt takes the IntReader fast path: same value, no round-trip.
	if v, err := fs.ReadInt("/t"); err != nil || v != 38500 {
		t.Fatalf("ReadInt = %v, %v", v, err)
	}
	if err := fs.WriteFile("/t", " 40000\n"); err != nil {
		t.Fatal(err)
	}
	if stored != 40000 {
		t.Errorf("stored = %d, want 40000", stored)
	}
	if err := fs.WriteFile("/t", "warm"); !errors.Is(err, ErrInvalid) {
		t.Errorf("garbage write: err = %v, want ErrInvalid", err)
	}
	// A failing closure (sensor dropout) surfaces on both read paths.
	fail = errors.New("conversion failed")
	if _, err := fs.ReadFile("/t"); !errors.Is(err, fail) {
		t.Errorf("ReadFile during fault: err = %v, want %v", err, fail)
	}
	if _, err := fs.ReadInt("/t"); !errors.Is(err, fail) {
		t.Errorf("ReadInt during fault: err = %v, want %v", err, fail)
	}
}

func TestIntFuncFilePermissions(t *testing.T) {
	fs := NewFS()
	fs.Register("/ro", IntFuncFile{ReadFn: func() (int64, error) { return 1, nil }})
	fs.Register("/wo", IntFuncFile{WriteFn: func(int64) error { return nil }})
	if err := fs.WriteInt("/ro", 2); !errors.Is(err, ErrPermission) {
		t.Errorf("write to read-only: err = %v, want ErrPermission", err)
	}
	if _, err := fs.ReadFile("/wo"); !errors.Is(err, ErrPermission) {
		t.Errorf("ReadFile of write-only: err = %v, want ErrPermission", err)
	}
	if _, err := fs.ReadInt("/wo"); !errors.Is(err, ErrPermission) {
		t.Errorf("ReadInt of write-only: err = %v, want ErrPermission", err)
	}
}

func TestReadIntFallbackParsesStrings(t *testing.T) {
	// Attributes without the IntReader fast path still parse: the
	// string form with trailing newline, and garbage still errors.
	fs := NewFS()
	fs.Register("/s", StaticFile("123\n"))
	if v, err := fs.ReadInt("/s"); err != nil || v != 123 {
		t.Fatalf("ReadInt = %v, %v", v, err)
	}
	fs.Register("/g", StaticFile("not-a-number\n"))
	if _, err := fs.ReadInt("/g"); !errors.Is(err, ErrInvalid) {
		t.Errorf("garbage: err = %v, want ErrInvalid", err)
	}
	if _, err := fs.ReadInt("/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing: err = %v, want ErrNotExist", err)
	}
	if _, err := fs.ReadInt("/"); !errors.Is(err, ErrIsDir) {
		t.Errorf("directory: err = %v, want ErrIsDir", err)
	}
}
