package hwmon

import (
	"errors"
	"testing"
	"time"

	"thermctl/internal/adt7467"
	"thermctl/internal/fan"
	"thermctl/internal/i2c"
	"thermctl/internal/sensor"
)

func mountRig(t *testing.T) (*FS, Chip, func(float64), *fan.Fan, *adt7467.Chip) {
	t.Helper()
	temp := 45.0
	src := sensor.SourceFunc(func() float64 { return temp })
	sens := sensor.New(sensor.Config{}, src, nil)
	f := fan.New(fan.Default(), 10)
	chipDev := adt7467.NewChip(sens, f)
	bus := i2c.NewBus()
	if err := bus.Attach(adt7467.DefaultAddr, chipDev); err != nil {
		t.Fatal(err)
	}
	drv, err := adt7467.NewDriver(bus, adt7467.DefaultAddr)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFS()
	c := MountADT7467(fs, 0, drv, sens, f)
	return fs, c, func(v float64) { temp = v }, f, chipDev
}

func TestTempInputMillidegrees(t *testing.T) {
	fs, c, set, _, _ := mountRig(t)
	set(51.25)
	v, err := fs.ReadInt(c.TempInput)
	if err != nil {
		t.Fatal(err)
	}
	if v != 51250 {
		t.Errorf("temp1_input = %d, want 51250", v)
	}
}

func TestName(t *testing.T) {
	fs, c, _, _, _ := mountRig(t)
	name, err := fs.ReadFile(c.Dir + "/name")
	if err != nil {
		t.Fatal(err)
	}
	if name != "adt7467\n" {
		t.Errorf("name = %q", name)
	}
}

func TestPWMEnableDefaultsAuto(t *testing.T) {
	fs, c, _, _, _ := mountRig(t)
	v, err := fs.ReadInt(c.PWMEnable)
	if err != nil {
		t.Fatal(err)
	}
	if v != PWMEnableAuto {
		t.Errorf("pwm1_enable = %d, want %d (chip boots in automatic mode)", v, PWMEnableAuto)
	}
}

func TestPWMWriteRequiresManualMode(t *testing.T) {
	fs, c, _, _, _ := mountRig(t)
	if err := fs.WriteInt(c.PWM, 128); !errors.Is(err, ErrPermission) {
		t.Errorf("pwm1 write in auto mode: err = %v, want ErrPermission", err)
	}
	if err := fs.WriteInt(c.PWMEnable, PWMEnableManual); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteInt(c.PWM, 128); err != nil {
		t.Errorf("pwm1 write in manual mode failed: %v", err)
	}
}

func TestPWMRoundTripThroughSysfs(t *testing.T) {
	fs, c, _, f, _ := mountRig(t)
	_ = fs.WriteInt(c.PWMEnable, PWMEnableManual)
	if err := fs.WriteInt(c.PWM, 191); err != nil { // ≈75%
		t.Fatal(err)
	}
	if d := f.Duty(); d < 74 || d > 76 {
		t.Errorf("fan duty after pwm1=191 is %v, want ≈75", d)
	}
	v, err := fs.ReadInt(c.PWM)
	if err != nil {
		t.Fatal(err)
	}
	if v != 191 {
		t.Errorf("pwm1 readback = %d, want 191", v)
	}
}

func TestFanInputReportsRPM(t *testing.T) {
	fs, c, _, f, _ := mountRig(t)
	_ = fs.WriteInt(c.PWMEnable, PWMEnableManual)
	_ = fs.WriteInt(c.PWM, 255)
	for i := 0; i < 40; i++ {
		f.Step(250 * time.Millisecond)
	}
	rpm, err := fs.ReadInt(c.FanInput)
	if err != nil {
		t.Fatal(err)
	}
	if rpm < 4200 || rpm > 4400 {
		t.Errorf("fan1_input = %d, want ≈4300", rpm)
	}
}

func TestModeSwitchBackToAuto(t *testing.T) {
	fs, c, set, f, chipDev := mountRig(t)
	_ = fs.WriteInt(c.PWMEnable, PWMEnableManual)
	_ = fs.WriteInt(c.PWM, 255)
	_ = fs.WriteInt(c.PWMEnable, PWMEnableAuto)
	set(30) // cold: auto curve wants PWMmin
	chipDev.Step(time.Second)
	if f.Duty() > 11 {
		t.Errorf("after returning to auto at 30 °C duty = %v, want ≈10", f.Duty())
	}
}

func TestTempMaxLimitAndAlarm(t *testing.T) {
	fs, c, set, _, chipDev := mountRig(t)
	// Program a 60 °C high limit through the hwmon file.
	if err := fs.WriteInt(c.TempMax, 60000); err != nil {
		t.Fatal(err)
	}
	if v, err := fs.ReadInt(c.TempMax); err != nil || v != 60000 {
		t.Fatalf("temp1_max readback = %d, %v", v, err)
	}
	// Below the limit: no alarm.
	set(50)
	chipDev.Step(time.Second)
	if v, _ := fs.ReadInt(c.TempMaxAlarm); v != 0 {
		t.Errorf("alarm = %d below the limit", v)
	}
	// Violate, then return: the latched alarm reads 1 once, then 0.
	set(65)
	chipDev.Step(time.Second)
	set(50)
	chipDev.Step(time.Second)
	if v, _ := fs.ReadInt(c.TempMaxAlarm); v != 1 {
		t.Error("latched alarm not reported")
	}
	if v, _ := fs.ReadInt(c.TempMaxAlarm); v != 0 {
		t.Error("alarm did not clear after read with condition gone")
	}
}

func TestPWMEnableRejectsOutOfRange(t *testing.T) {
	fs, c, _, _, _ := mountRig(t)
	if err := fs.WriteInt(c.PWMEnable, 5); !errors.Is(err, ErrInvalid) {
		t.Errorf("pwm1_enable=5: err = %v, want ErrInvalid", err)
	}
}
