// Package hotspot identifies which phases of a workload drive the
// temperature — a lumped re-creation of Tempest, the authors' earlier
// tool for finding hot spots in parallel code (the paper's reference
// [28], and the provenance of its Figure 2 behaviour taxonomy).
//
// Given a temperature time series and a set of labelled spans (program
// phases, loop nests, communication epochs), Analyze attributes thermal
// statistics to each label: mean and peak temperature, net temperature
// rise, and heating rate. Rank orders labels by how hard they push the
// die, which is where an engineer looks first when a code section
// triggers thermal emergencies.
package hotspot

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"thermctl/internal/trace"
)

// Span is one labelled interval of the run. Spans may repeat a label
// (every iteration of a phase) and may be unordered.
type Span struct {
	Label string
	Start time.Duration
	End   time.Duration
}

// Stats aggregates the thermal behaviour of one label across all its
// spans.
type Stats struct {
	Label string
	// Spans is how many intervals carried the label.
	Spans int
	// Time is the total labelled duration.
	Time time.Duration
	// MeanC and MaxC are computed over every sample inside the spans.
	MeanC float64
	MaxC  float64
	// RiseC is the summed net temperature change across the spans: the
	// label's total heating contribution.
	RiseC float64
	// RatePerMin is RiseC normalized by labelled time, °C per minute —
	// the label's heating intensity.
	RatePerMin float64

	sampleCount int // samples merged into MeanC so far
}

// Report is the full attribution.
type Report struct {
	Stats map[string]*Stats
}

// Analyze attributes the series to the spans. Samples outside every
// span are ignored. It returns an error when no span contains any
// sample.
func Analyze(temp *trace.Series, spans []Span) (*Report, error) {
	if temp == nil || temp.Len() == 0 {
		return nil, fmt.Errorf("hotspot: empty temperature series")
	}
	rep := &Report{Stats: make(map[string]*Stats)}
	matched := false
	for _, sp := range spans {
		if sp.End <= sp.Start {
			return nil, fmt.Errorf("hotspot: span %q ends (%v) before it starts (%v)", sp.Label, sp.End, sp.Start)
		}
		st := rep.Stats[sp.Label]
		if st == nil {
			st = &Stats{Label: sp.Label, MaxC: math.Inf(-1)}
			rep.Stats[sp.Label] = st
		}
		var sum float64
		var n int
		first, last := math.NaN(), math.NaN()
		for _, p := range temp.Points {
			if p.T < sp.Start || p.T >= sp.End {
				continue
			}
			if n == 0 {
				first = p.V
			}
			last = p.V
			sum += p.V
			if p.V > st.MaxC {
				st.MaxC = p.V
			}
			n++
		}
		if n == 0 {
			continue
		}
		matched = true
		st.Spans++
		st.Time += sp.End - sp.Start
		// Merge the mean incrementally across spans.
		prevWeight := st.MeanC * float64(st.sampleCount)
		st.sampleCount += n
		st.MeanC = (prevWeight + sum) / float64(st.sampleCount)
		st.RiseC += last - first
	}
	if !matched {
		return nil, fmt.Errorf("hotspot: no sample falls inside any span")
	}
	//thermlint:allow determinism -- independent per-value update; no cross-iteration state or ordered output
	for _, st := range rep.Stats {
		if mins := st.Time.Minutes(); mins > 0 {
			st.RatePerMin = st.RiseC / mins
		}
	}
	return rep, nil
}

// Rank returns the labels ordered hottest-first: primarily by peak
// temperature, then by heating rate, then alphabetically. The full
// tie-break matters: sort.Slice is unstable and the candidates come
// out of a map, so without it the ranking of equally hot phases would
// change from run to run.
func (r *Report) Rank() []*Stats {
	labels := make([]string, 0, len(r.Stats))
	for l := range r.Stats {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]*Stats, 0, len(labels))
	for _, l := range labels {
		if st := r.Stats[l]; st.Spans > 0 {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxC != out[j].MaxC {
			return out[i].MaxC > out[j].MaxC
		}
		if out[i].RatePerMin != out[j].RatePerMin {
			return out[i].RatePerMin > out[j].RatePerMin
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// String prints the ranking as a table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-7s %-9s %-9s %-9s %-10s\n",
		"phase", "spans", "time s", "mean degC", "max degC", "degC/min")
	for _, st := range r.Rank() {
		fmt.Fprintf(&sb, "%-14s %-7d %-9.1f %-9.2f %-9.2f %-+10.2f\n",
			st.Label, st.Spans, st.Time.Seconds(), st.MeanC, st.MaxC, st.RatePerMin)
	}
	return sb.String()
}
