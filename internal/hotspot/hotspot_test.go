package hotspot

import (
	"math"
	"strings"
	"testing"
	"time"

	"thermctl/internal/node"
	"thermctl/internal/trace"
	"thermctl/internal/workload"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func seriesFrom(vals []float64) *trace.Series {
	s := &trace.Series{Name: "temp"}
	for i, v := range vals {
		s.Add(sec(float64(i)), v)
	}
	return s
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, nil); err == nil {
		t.Error("nil series accepted")
	}
	if _, err := Analyze(&trace.Series{}, nil); err == nil {
		t.Error("empty series accepted")
	}
	s := seriesFrom([]float64{40, 41})
	if _, err := Analyze(s, []Span{{Label: "x", Start: sec(5), End: sec(2)}}); err == nil {
		t.Error("inverted span accepted")
	}
	if _, err := Analyze(s, []Span{{Label: "x", Start: sec(100), End: sec(200)}}); err == nil {
		t.Error("span with no samples accepted")
	}
}

func TestAnalyzeBasicAttribution(t *testing.T) {
	// 0-4 s flat at 40 ("idle"), 5-9 s climbing 50→58 ("compute").
	s := seriesFrom([]float64{40, 40, 40, 40, 40, 50, 52, 54, 56, 58})
	rep, err := Analyze(s, []Span{
		{Label: "idle", Start: 0, End: sec(5)},
		{Label: "compute", Start: sec(5), End: sec(10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	idle, compute := rep.Stats["idle"], rep.Stats["compute"]
	if idle.MeanC != 40 || idle.MaxC != 40 || idle.RiseC != 0 {
		t.Errorf("idle stats: %+v", idle)
	}
	if compute.MeanC != 54 || compute.MaxC != 58 {
		t.Errorf("compute stats: %+v", compute)
	}
	if compute.RiseC != 8 {
		t.Errorf("compute rise = %v, want 8", compute.RiseC)
	}
	// 8 °C over 5 s = 96 °C/min.
	if math.Abs(compute.RatePerMin-96) > 1e-9 {
		t.Errorf("compute rate = %v, want 96", compute.RatePerMin)
	}
}

func TestAnalyzeRepeatedLabelMerges(t *testing.T) {
	s := seriesFrom([]float64{40, 42, 40, 44, 40, 46})
	rep, err := Analyze(s, []Span{
		{Label: "burst", Start: sec(1), End: sec(2)},
		{Label: "burst", Start: sec(3), End: sec(4)},
		{Label: "burst", Start: sec(5), End: sec(6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := rep.Stats["burst"]
	if b.Spans != 3 {
		t.Errorf("spans = %d", b.Spans)
	}
	if b.MeanC != 44 { // (42+44+46)/3
		t.Errorf("merged mean = %v, want 44", b.MeanC)
	}
	if b.MaxC != 46 {
		t.Errorf("max = %v", b.MaxC)
	}
	if b.Time != 3*time.Second {
		t.Errorf("time = %v", b.Time)
	}
}

func TestRankOrdersHottestFirst(t *testing.T) {
	s := seriesFrom([]float64{40, 50, 60, 45, 45, 45})
	rep, err := Analyze(s, []Span{
		{Label: "hot", Start: sec(1), End: sec(3)},
		{Label: "warm", Start: sec(3), End: sec(6)},
		{Label: "cold", Start: 0, End: sec(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ranked := rep.Rank()
	if len(ranked) != 3 || ranked[0].Label != "hot" || ranked[2].Label != "cold" {
		labels := make([]string, len(ranked))
		for i, r := range ranked {
			labels[i] = r.Label
		}
		t.Errorf("rank = %v", labels)
	}
	out := rep.String()
	if !strings.Contains(out, "hot") || !strings.Contains(out, "degC/min") {
		t.Errorf("report:\n%s", out)
	}
}

// TestEndToEndFindsTheHotPhase profiles a real simulated run of the
// Figure 2 workload and checks the tool points at the ramp/burn phases
// rather than the idle ones.
func TestEndToEndFindsTheHotPhase(t *testing.T) {
	n, err := node.New(node.DefaultConfig("hotspot", 71))
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0.05)
	n.SetGenerator(workload.Fig2Profile())
	temp := &trace.Series{Name: "temp"}
	dt := 250 * time.Millisecond
	for n.Elapsed() < 300*time.Second {
		n.Step(dt)
		temp.Add(n.Elapsed(), n.Sensor.Read())
	}
	rep, err := Analyze(temp, []Span{
		{Label: "idle", Start: 0, End: sec(30)},
		{Label: "onset", Start: sec(30), End: sec(90)},
		{Label: "jitter", Start: sec(90), End: sec(150)},
		{Label: "ramp", Start: sec(150), End: sec(270)},
		{Label: "cooldown", Start: sec(270), End: sec(300)},
	})
	if err != nil {
		t.Fatal(err)
	}
	top := rep.Rank()[0].Label
	if top != "ramp" && top != "onset" {
		t.Errorf("hottest phase = %q, want the ramp or the onset", top)
	}
	if rep.Stats["idle"].MaxC >= rep.Stats["ramp"].MaxC {
		t.Error("idle ranked as hot as the ramp")
	}
	if rep.Stats["cooldown"].RatePerMin >= 0 {
		t.Errorf("cooldown heating rate = %+.2f, want negative",
			rep.Stats["cooldown"].RatePerMin)
	}
}
