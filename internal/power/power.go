// Package power models node-level power accounting: the simulated
// equivalent of the Watts up? Pro ES wall meter used in the paper.
//
// System power is the sum of a constant platform base (PSU overhead,
// motherboard, DRAM, disk), the CPU's electrical power, and the fan's
// electrical power. The Meter integrates samples into energy and exposes
// the summary statistics the paper's Table 1 reports: average power and
// the power-delay product.
package power

import "time"

// Breakdown is one instantaneous power sample, in watts.
type Breakdown struct {
	CPU  float64
	Fan  float64
	Base float64
}

// Total returns the node's wall power.
func (b Breakdown) Total() float64 { return b.CPU + b.Fan + b.Base }

// DefaultBaseW is the constant platform power of one node (PSU loss,
// board, memory, disk — 2005-era boards idled high), calibrated so a
// node running BT averages ≈100 W as in the paper's Table 1.
const DefaultBaseW = 45.0

// Meter integrates power over simulated time.
type Meter struct {
	energyJ   float64
	elapsed   time.Duration
	peakW     float64
	samples   uint64
	energyCPU float64
	energyFan float64
}

// Sample records that the node drew b for the duration dt.
func (m *Meter) Sample(b Breakdown, dt time.Duration) {
	s := dt.Seconds()
	w := b.Total()
	m.energyJ += w * s
	m.energyCPU += b.CPU * s
	m.energyFan += b.Fan * s
	m.elapsed += dt
	m.samples++
	if w > m.peakW {
		m.peakW = w
	}
}

// EnergyJ returns total integrated energy in joules.
func (m *Meter) EnergyJ() float64 { return m.energyJ }

// CPUEnergyJ returns the CPU component of the integrated energy.
func (m *Meter) CPUEnergyJ() float64 { return m.energyCPU }

// FanEnergyJ returns the fan component of the integrated energy.
func (m *Meter) FanEnergyJ() float64 { return m.energyFan }

// Elapsed returns the metered duration.
func (m *Meter) Elapsed() time.Duration { return m.elapsed }

// AverageW returns mean power over the metered interval, or 0 if nothing
// was sampled.
func (m *Meter) AverageW() float64 {
	s := m.elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return m.energyJ / s
}

// PeakW returns the highest sampled total power.
func (m *Meter) PeakW() float64 { return m.peakW }

// Samples returns the number of samples recorded.
func (m *Meter) Samples() uint64 { return m.samples }

// PowerDelayProduct returns average power times elapsed time (W·s) — the
// combined power/performance metric of the paper's Table 1. Numerically
// it equals the consumed energy, but the paper frames it as avg·delay, so
// we expose it under that name.
func (m *Meter) PowerDelayProduct() float64 {
	return m.AverageW() * m.elapsed.Seconds()
}

// Reset clears the meter.
func (m *Meter) Reset() { *m = Meter{} }
