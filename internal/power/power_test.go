package power

import (
	"math"
	"testing"
	"time"
)

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{CPU: 60, Fan: 3, Base: 33}
	if b.Total() != 96 {
		t.Errorf("Total = %v, want 96", b.Total())
	}
}

func TestEmptyMeter(t *testing.T) {
	var m Meter
	if m.AverageW() != 0 || m.EnergyJ() != 0 || m.PowerDelayProduct() != 0 {
		t.Error("empty meter should report zeros")
	}
}

func TestAverageAndEnergy(t *testing.T) {
	var m Meter
	m.Sample(Breakdown{CPU: 50, Base: 30}, 2*time.Second) // 80 W for 2 s
	m.Sample(Breakdown{CPU: 70, Base: 30}, 2*time.Second) // 100 W for 2 s
	if got := m.EnergyJ(); math.Abs(got-360) > 1e-9 {
		t.Errorf("energy = %v J, want 360", got)
	}
	if got := m.AverageW(); math.Abs(got-90) > 1e-9 {
		t.Errorf("average = %v W, want 90", got)
	}
	if m.Elapsed() != 4*time.Second {
		t.Errorf("elapsed = %v, want 4s", m.Elapsed())
	}
	if m.Samples() != 2 {
		t.Errorf("samples = %d, want 2", m.Samples())
	}
}

func TestPeak(t *testing.T) {
	var m Meter
	m.Sample(Breakdown{CPU: 40}, time.Second)
	m.Sample(Breakdown{CPU: 90}, time.Second)
	m.Sample(Breakdown{CPU: 60}, time.Second)
	if m.PeakW() != 90 {
		t.Errorf("peak = %v, want 90", m.PeakW())
	}
}

func TestComponentEnergy(t *testing.T) {
	var m Meter
	m.Sample(Breakdown{CPU: 50, Fan: 5, Base: 30}, 10*time.Second)
	if m.CPUEnergyJ() != 500 {
		t.Errorf("CPU energy = %v, want 500", m.CPUEnergyJ())
	}
	if m.FanEnergyJ() != 50 {
		t.Errorf("fan energy = %v, want 50", m.FanEnergyJ())
	}
}

func TestPowerDelayProductEqualsAvgTimesDelay(t *testing.T) {
	var m Meter
	m.Sample(Breakdown{CPU: 64.19, Base: 30}, 233*time.Second)
	want := m.AverageW() * 233
	if got := m.PowerDelayProduct(); math.Abs(got-want) > 1e-6 {
		t.Errorf("PDP = %v, want %v", got, want)
	}
}

func TestReset(t *testing.T) {
	var m Meter
	m.Sample(Breakdown{CPU: 100}, time.Second)
	m.Reset()
	if m.AverageW() != 0 || m.Samples() != 0 || m.PeakW() != 0 {
		t.Error("Reset did not clear the meter")
	}
}
