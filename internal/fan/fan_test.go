package fan

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSetDutyClamps(t *testing.T) {
	f := New(Default(), 50)
	f.SetDuty(150)
	if f.Duty() != 100 {
		t.Errorf("Duty after SetDuty(150) = %v, want 100", f.Duty())
	}
	f.SetDuty(-5)
	if f.Duty() != 0 {
		t.Errorf("Duty after SetDuty(-5) = %v, want 0", f.Duty())
	}
}

func TestFullDutyReachesMaxRPM(t *testing.T) {
	f := New(Default(), 100)
	if got := f.RPM(); math.Abs(got-4300) > 1 {
		t.Errorf("RPM at 100%% duty = %v, want 4300", got)
	}
	if got := f.Airflow(); math.Abs(got-1) > 1e-9 {
		t.Errorf("Airflow at full speed = %v, want 1", got)
	}
}

func TestZeroDutyStopsFan(t *testing.T) {
	f := New(Default(), 0)
	if f.RPM() != 0 {
		t.Errorf("RPM at 0%% duty = %v, want 0", f.RPM())
	}
	if f.Power() != 0 {
		t.Errorf("Power at 0 RPM = %v, want 0", f.Power())
	}
}

func TestSpinUpFloor(t *testing.T) {
	cfg := Default()
	f := New(cfg, 1)
	want := cfg.MaxRPM * (cfg.FloorFrac + (1-cfg.FloorFrac)*0.01)
	if math.Abs(f.RPM()-want) > 1 {
		t.Errorf("RPM at 1%% duty = %v, want %v (spin floor)", f.RPM(), want)
	}
	if f.RPM() < cfg.MaxRPM*cfg.FloorFrac {
		t.Error("fan spinning below the physical floor")
	}
}

func TestRPMMonotonicInDuty(t *testing.T) {
	cfg := Default()
	if err := quick.Check(func(a, b uint8) bool {
		da, db := float64(a%101), float64(b%101)
		if da > db {
			da, db = db, da
		}
		fa, fb := New(cfg, da), New(cfg, db)
		return fa.RPM() <= fb.RPM()+1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestStepLagsTowardTarget(t *testing.T) {
	f := New(Default(), 10)
	start := f.RPM()
	f.SetDuty(100)
	f.Step(250 * time.Millisecond)
	mid := f.RPM()
	if mid <= start {
		t.Fatal("fan did not accelerate after duty increase")
	}
	target := 4300.0
	if mid >= target {
		t.Fatalf("fan reached target instantaneously: %v", mid)
	}
	// After many time constants it converges.
	for i := 0; i < 100; i++ {
		f.Step(250 * time.Millisecond)
	}
	if math.Abs(f.RPM()-target) > 5 {
		t.Errorf("fan did not converge: RPM=%v want ~%v", f.RPM(), target)
	}
}

func TestCubicPowerLaw(t *testing.T) {
	cfg := Default()
	full := New(cfg, 100)
	if math.Abs(full.Power()-cfg.MaxPower) > 1e-6 {
		t.Errorf("power at full speed = %v, want %v", full.Power(), cfg.MaxPower)
	}
	// Half airflow should draw one-eighth the power.
	half := New(cfg, 100)
	half.rpm = cfg.MaxRPM / 2
	if got, want := half.Power(), cfg.MaxPower/8; math.Abs(got-want) > 1e-6 {
		t.Errorf("power at half speed = %v, want %v", got, want)
	}
}

func TestTachQuantization(t *testing.T) {
	cfg := Default()
	f := New(cfg, 50)
	f.rpm = 2344
	if got := f.TachRPM(); got != 2340 {
		t.Errorf("TachRPM for 2344 = %v, want 2340 (30 RPM resolution)", got)
	}
	cfg.TachResolution = 0
	g := New(cfg, 50)
	g.rpm = 2344
	if got := g.TachRPM(); got != 2344 {
		t.Errorf("TachRPM with resolution 0 = %v, want raw 2344", got)
	}
}

func TestZeroTimeConstIsInstant(t *testing.T) {
	cfg := Default()
	cfg.TimeConst = 0
	f := New(cfg, 0)
	f.SetDuty(100)
	f.Step(time.Millisecond)
	if math.Abs(f.RPM()-4300) > 1e-9 {
		t.Errorf("zero time constant should be instantaneous, RPM=%v", f.RPM())
	}
}

func TestStringMentionsDutyAndRPM(t *testing.T) {
	f := New(Default(), 75)
	s := f.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkFanStep(b *testing.B) {
	f := New(Default(), 50)
	f.SetDuty(80)
	for i := 0; i < b.N; i++ {
		f.Step(250 * time.Millisecond)
	}
}
