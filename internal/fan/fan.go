// Package fan models a PWM-controlled CPU cooling fan.
//
// The model follows the standard fan affinity laws: rotational speed is an
// affine function of PWM duty cycle above the spin-up floor, volumetric
// airflow is proportional to speed, and electrical power grows with the
// cube of speed. Speed changes are first-order lagged (a real rotor has
// inertia), which matters for the controller: a duty-cycle write does not
// cool the die on the same sample.
//
// The paper's platform is a 4300 RPM fan whose continuous speed range is
// discretized into 100 duty steps (1%..100%); Default returns that fan.
package fan

import (
	"fmt"
	"math"
	"sync"
	"time"

	"thermctl/internal/faults"
	"thermctl/internal/metrics"
)

// Config describes the static characteristics of a fan.
type Config struct {
	// MaxRPM is the rotational speed at 100% duty. The paper's fan tops
	// out at 4300 RPM.
	MaxRPM float64
	// FloorFrac is the fraction of MaxRPM delivered at the lowest
	// non-zero duty; real fans cannot rotate arbitrarily slowly.
	FloorFrac float64
	// MaxPower is the electrical power drawn at full speed, in watts.
	MaxPower float64
	// TimeConst is the first-order lag time constant of the rotor.
	TimeConst time.Duration
	// TachResolution is the RPM quantization of the tachometer readback.
	TachResolution float64
}

// Default returns the configuration used throughout the reproduction,
// matching the paper's 4300 RPM fan.
func Default() Config {
	return Config{
		MaxRPM:         4300,
		FloorFrac:      0.08,
		MaxPower:       4.5,
		TimeConst:      800 * time.Millisecond,
		TachResolution: 30,
	}
}

// Fan is a PWM-controlled fan instance. It is safe for concurrent use:
// the rotor is shared hardware, observed and actuated by the in-band
// path (hwmon files), the ADT7467 chip, and the BMC, and the BMC's IPMI
// server handles connections on their own goroutines while the
// simulation loop steps the rotor.
type Fan struct {
	mu     sync.Mutex
	cfg    Config
	duty   float64 // commanded duty, percent [0,100]
	rpm    float64 // current (lagged) speed
	failed bool

	// inj, when attached, drives bearing-degradation and hard-stall
	// fault episodes on top of the explicit SetFailed knob.
	inj *faults.Injector

	// dutyTransitions is the optional nil-safe metric counting commanded
	// duty changes (see InstrumentMetrics).
	dutyTransitions *metrics.Counter
}

// New returns a fan with the given configuration, initially commanded to
// dutyPercent and already spun up to the corresponding steady speed.
func New(cfg Config, dutyPercent float64) *Fan {
	f := &Fan{cfg: cfg}
	f.SetDuty(dutyPercent)
	f.rpm = f.targetRPM()
	return f
}

// SetDuty commands a new PWM duty cycle in percent. Values are clamped
// to [0, 100].
func (f *Fan) SetDuty(dutyPercent float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	clamped := math.Min(100, math.Max(0, dutyPercent))
	if clamped != f.duty {
		f.dutyTransitions.Inc()
	}
	f.duty = clamped
}

// InstrumentMetrics registers a duty-transition counter on reg with
// the given constant labels and attaches it: every SetDuty that
// changes the commanded duty increments it. Wiring-time only —
// registration must not happen in Step-reachable code.
func (f *Fan) InstrumentMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	c := reg.NewCounter("thermctl_fan_duty_transitions_total",
		"commanded PWM duty changes", labels...)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dutyTransitions = c
}

// Duty returns the commanded duty cycle in percent.
func (f *Fan) Duty() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.duty
}

// SetFailed marks the fan as mechanically failed (seized rotor): it
// spins down regardless of the commanded duty, and the tachometer will
// report the stall. Fan failure is a standard thermal-management test
// case (the paper's related work reacts to it with DVFS).
func (f *Fan) SetFailed(failed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failed = failed
}

// Failed reports whether the fan is failed.
func (f *Fan) Failed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// AttachInjector subscribes the fan to a fault plane: a FanStalled state
// seizes the rotor like SetFailed, and FanDegrade caps the reached speed
// at that fraction of the commanded target (worn bearings). Wiring time
// only.
func (f *Fan) AttachInjector(inj *faults.Injector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inj = inj
}

// targetRPM is the steady-state speed for the commanded duty.
// Called with f.mu held.
func (f *Fan) targetRPM() float64 {
	st := f.inj.State()
	if f.failed || st.FanStalled || f.duty <= 0 {
		return 0
	}
	frac := f.cfg.FloorFrac + (1-f.cfg.FloorFrac)*f.duty/100
	rpm := f.cfg.MaxRPM * frac
	if st.FanDegrade > 0 {
		rpm *= st.FanDegrade
	}
	return rpm
}

// Step advances the rotor dynamics by dt.
func (f *Fan) Step(dt time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	target := f.targetRPM()
	tau := f.cfg.TimeConst.Seconds()
	if tau <= 0 {
		f.rpm = target
		return
	}
	alpha := 1 - math.Exp(-dt.Seconds()/tau)
	f.rpm += alpha * (target - f.rpm)
}

// RPM returns the true current rotational speed.
func (f *Fan) RPM() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rpm
}

// TachRPM returns the speed as reported by the tachometer, quantized to
// the tach resolution.
func (f *Fan) TachRPM() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.TachResolution <= 0 {
		return f.rpm
	}
	return math.Round(f.rpm/f.cfg.TachResolution) * f.cfg.TachResolution
}

// Airflow returns the normalized volumetric airflow in [0, 1], which by
// the fan laws is proportional to rotational speed.
func (f *Fan) Airflow() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.airflow()
}

// airflow is Airflow with f.mu held.
func (f *Fan) airflow() float64 {
	if f.cfg.MaxRPM <= 0 {
		return 0
	}
	return f.rpm / f.cfg.MaxRPM
}

// Power returns the electrical power drawn by the fan in watts. Fan
// power scales with the cube of speed, which is why aggressive cooling
// policies carry a measurable power cost.
func (f *Fan) Power() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	x := f.airflow()
	return f.cfg.MaxPower * x * x * x
}

// String summarizes the fan state for logs.
func (f *Fan) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fmt.Sprintf("fan{duty=%.0f%% rpm=%.0f}", f.duty, f.rpm)
}
