package server

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store lays out per-job artifacts on disk:
//
//	<root>/<job-id>/scenario.json   the submitted spec, verbatim
//	<root>/<job-id>/trace.tct       the campaign trace (tracefile)
//	<root>/<job-id>/report.json     the terminal campaign summary
//
// Artifacts outlive the in-memory job table only as files — the server
// does not rebuild job state from disk on restart (campaigns are cheap
// to resubmit; traces are the durable output).
type Store struct {
	root string
}

// NewStore creates (if needed) and wraps the artifact root directory.
func NewStore(root string) (*Store, error) {
	if root == "" {
		return nil, fmt.Errorf("server: artifact store needs a root directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("server: artifact root: %w", err)
	}
	return &Store{root: root}, nil
}

// Root returns the artifact root directory.
func (s *Store) Root() string { return s.root }

// JobDir creates and returns the job's artifact directory.
func (s *Store) JobDir(id string) (string, error) {
	dir := filepath.Join(s.root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("server: job dir: %w", err)
	}
	return dir, nil
}

// ScenarioPath returns the job's stored scenario spec path.
func (s *Store) ScenarioPath(id string) string {
	return filepath.Join(s.root, id, "scenario.json")
}

// TracePath returns the job's trace artifact path.
func (s *Store) TracePath(id string) string {
	return filepath.Join(s.root, id, "trace.tct")
}

// ReportPath returns the job's report artifact path.
func (s *Store) ReportPath(id string) string {
	return filepath.Join(s.root, id, "report.json")
}
