// Package server is the multi-tenant campaign service: a REST API
// that accepts config.Scenario specs, runs each as a simulated thermal
// campaign on a bounded worker pool, streams live telemetry over SSE,
// and persists per-job artifacts (a .tct trace and a JSON report) to a
// disk store.
//
// Lifecycle: POST /v1/jobs validates the spec and enqueues a Job
// (FIFO, bounded — a full queue refuses with 429). A pool of N workers
// drains the queue; each job builds its rig, runs the program or a
// generator-driven loop with per-job context cancellation, and lands
// in one terminal state: done, failed or canceled. DELETE cancels —
// immediately when still queued, at the next simulation round when
// running. GET /v1/jobs/{id}/stream serves live samples and fault /
// fail-safe events; GET .../trace and .../report serve the artifacts.
package server

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"thermctl/internal/cluster"
	"thermctl/internal/config"
	"thermctl/internal/metrics"
	"thermctl/internal/report"
	"thermctl/internal/workload"
)

// Config sizes and wires a Server.
type Config struct {
	// Workers is the number of concurrent campaigns. Default 4.
	Workers int
	// QueueDepth bounds the FIFO backlog beyond the running jobs; a
	// submission past the bound is refused with 429. Default 64.
	QueueDepth int
	// Dir is the artifact store root. Required.
	Dir string
	// Registry, when non-nil, receives the server's instruments.
	Registry *metrics.Registry
	// SampleEvery is the trace and stream cadence in simulated time.
	// Default 1s.
	SampleEvery time.Duration
	// GeneratorHorizon bounds generator-driven (programless) jobs that
	// have no chaos horizon of their own. Default 60s of simulated
	// time.
	GeneratorHorizon time.Duration
	// ScenarioDir is the scenario library that submitted documents may
	// compose from with "extends". Empty (the default) refuses extends:
	// a client must not be able to read arbitrary server files by
	// naming them as bases.
	ScenarioDir string
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = time.Second
	}
	if c.GeneratorHorizon <= 0 {
		c.GeneratorHorizon = 60 * time.Second
	}
}

// Server runs campaigns for API clients. Construct with New, serve
// Handler, stop with Shutdown.
type Server struct {
	cfg   Config
	store *Store
	m     *srvMetrics

	// baseCtx parents every job context and every SSE handler's wait;
	// canceling it is the force-stop lever.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	seq        atomic.Uint64

	// mu guards the job table and the queue's accepting side: draining
	// flips and close(queue) happen under mu, so a submission holding
	// mu can never send on a closed channel.
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	queue    chan *Job
	draining bool

	// hookRunning, when set by a test, is called from the worker as a
	// job flips to running, before execution starts. It lets tests
	// park workers deterministically to fill the queue.
	hookRunning func(*Job)
}

// New builds the server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	store, err := NewStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		store:      store,
		m:          newSrvMetrics(cfg.Registry),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// newID mints a job identifier: a monotonic sequence number plus a
// random suffix so ids never collide with a prior run's artifacts.
func (s *Server) newID() string {
	var buf [4]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back
		// to the sequence alone rather than refusing work.
		return fmt.Sprintf("j%06d", s.seq.Add(1))
	}
	return fmt.Sprintf("j%06d-%08x", s.seq.Add(1), binary.BigEndian.Uint32(buf[:]))
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The response writer owns delivery errors; nothing to do here.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// maxSpecBytes bounds a submitted scenario document.
const maxSpecBytes = 1 << 20

// handleSubmit validates and enqueues one campaign.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := config.ReadScenarioDir(io.LimitReader(r.Body, maxSpecBytes), s.cfg.ScenarioDir)
	if err != nil {
		s.m.rejected[rejectInvalid].Inc()
		writeError(w, http.StatusBadRequest, "invalid scenario: %v", err)
		return
	}
	// A programless scenario with no workload plane runs the historical
	// server default: per-node cpu-burn. Setting it here (rather than
	// inside execute) persists the effective workload in the job's
	// scenario.json artifact.
	if spec.Program == "" && !spec.HasWorkload() {
		spec.Workload = &workload.Spec{Kind: workload.KindCPUBurn}
	}

	id := s.newID()
	dir, err := s.store.JobDir(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := writeScenarioFile(s.store.ScenarioPath(id), spec); err != nil {
		writeError(w, http.StatusInternalServerError, "persist scenario: %v", err)
		return
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	job := &Job{
		id:        id,
		scenario:  spec,
		ctx:       ctx,
		cancel:    cancel,
		hub:       newHub(s.m.streamDropped),
		dir:       dir,
		state:     StateQueued,
		submitted: time.Now(),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		s.m.rejected[rejectDraining].Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		cancel()
		s.m.rejected[rejectQueue].Inc()
		// Drop the provisional artifact dir: the job never existed.
		if err := os.RemoveAll(dir); err != nil {
			writeError(w, http.StatusTooManyRequests,
				"queue full (%d waiting); artifact cleanup also failed: %v", s.cfg.QueueDepth, err)
			return
		}
		writeError(w, http.StatusTooManyRequests, "queue full (%d jobs waiting)", s.cfg.QueueDepth)
		return
	}
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.m.submitted.Inc()
	s.m.queueDepth.Add(1)
	writeJSON(w, http.StatusAccepted, job.view())
}

// writeScenarioFile persists the normalized spec as the job's
// scenario.json artifact.
func writeScenarioFile(path string, spec config.Scenario) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(spec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// listBody is the GET /v1/jobs envelope.
type listBody struct {
	Jobs []View `json:"jobs"`
}

// handleList returns every job in submission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	body := listBody{Jobs: make([]View, 0, len(jobs))}
	for _, j := range jobs {
		body.Jobs = append(body.Jobs, j.view())
	}
	writeJSON(w, http.StatusOK, body)
}

// lookup fetches a job by the request's id path value, writing a 404
// on a miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
	}
	return j
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.view())
	}
}

// handleCancel cancels a queued or running job; canceling a terminal
// job is a conflict.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if j.State().Terminal() {
		writeError(w, http.StatusConflict, "job %s already %s", j.ID(), j.State())
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleTrace serves the job's .tct trace artifact.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.serveArtifact(w, r, s.store.TracePath, "application/octet-stream")
}

// handleReport serves the job's JSON report artifact.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.serveArtifact(w, r, s.store.ReportPath, "application/json")
}

func (s *Server) serveArtifact(w http.ResponseWriter, r *http.Request, path func(string) string, ctype string) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if !j.State().Terminal() {
		writeError(w, http.StatusConflict, "job %s is %s; artifacts appear when it finishes", j.ID(), j.State())
		return
	}
	p := path(j.ID())
	if _, err := os.Stat(p); err != nil {
		writeError(w, http.StatusNotFound, "job %s produced no such artifact", j.ID())
		return
	}
	w.Header().Set("Content-Type", ctype)
	http.ServeFile(w, r, p)
}

// handleStream serves the job's live telemetry as Server-Sent Events:
// "state" on subscribe and at the end, "sample" / "fault" / "failsafe"
// while the campaign runs.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming needs a flushable connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")

	sub := j.hub.subscribe()
	if sub == nil {
		// Terminal before we subscribed: the stream is just the final
		// state record.
		writeSSE(w, "state", mustJSON(j.view()))
		fl.Flush()
		return
	}
	defer j.hub.unsubscribe(sub)
	s.m.streamClients.Add(1)
	defer s.m.streamClients.Add(-1)

	writeSSE(w, "state", mustJSON(j.view()))
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		case ev, ok := <-sub:
			if !ok {
				// Hub closed: the job is terminal. Finish with the
				// final state.
				writeSSE(w, "state", mustJSON(j.view()))
				fl.Flush()
				return
			}
			writeSSE(w, ev.kind, ev.data)
			fl.Flush()
		}
	}
}

// writeSSE frames one Server-Sent Event.
func writeSSE(w io.Writer, kind string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, data)
}

// mustJSON marshals values that cannot fail (plain structs of strings
// and numbers).
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"error":"encode"}`)
	}
	return data
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.m.queueDepth.Add(-1)
		s.runJob(j)
	}
}

// runJob takes one dequeued job through execution to a terminal state.
func (s *Server) runJob(j *Job) {
	if !j.markRunning() {
		// Canceled while queued.
		s.m.finished[StateCanceled].Inc()
		j.hub.close()
		return
	}
	if s.hookRunning != nil {
		s.hookRunning(j)
	}
	s.m.running.Add(1)
	start := metrics.Now()
	sum, err := s.execute(j)
	st := StateDone
	switch {
	case err != nil:
		st = StateFailed
	case sum != nil && sum.Canceled:
		st = StateCanceled
	}
	j.finish(st, err, sum)
	s.m.running.Add(-1)
	s.m.jobSeconds.ObserveSince(start)
	s.m.finished[st].Inc()
	j.hub.close()
}

// execute builds and runs one campaign, writing the trace and report
// artifacts. The returned summary is non-nil whenever the simulation
// ran, even if canceled part-way.
func (s *Server) execute(j *Job) (*report.CampaignSummary, error) {
	rig, err := j.scenario.Build()
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	c := rig.Cluster
	c.SetStop(j.ctx.Done())

	tf, err := os.Create(s.store.TracePath(j.id))
	if err != nil {
		return nil, fmt.Errorf("trace artifact: %w", err)
	}
	tw, err := config.AttachTraceProbe(c, tf, s.cfg.SampleEvery)
	if err != nil {
		tf.Close()
		return nil, fmt.Errorf("trace probe: %w", err)
	}

	// The stream probe joins the serial post phase alongside the trace
	// probe, so both observe the same step boundaries.
	c.AddController(newStreamProbe(rig, j.hub, s.cfg.SampleEvery, s.m.encodeErrs))

	var res cluster.RunResult
	if rig.Program != nil {
		res = c.RunProgram(*rig.Program, 0)
	} else {
		// Generator-driven job: the rig carries one generator per node
		// (handleSubmit defaults the workload plane for programless
		// scenarios), and cancellation rides the SetStop signal above.
		horizon := rig.ChaosHorizon
		if horizon <= 0 {
			horizon = s.cfg.GeneratorHorizon
		}
		res = c.RunGenerators(rig.Generators, horizon)
	}

	twErr := tw.Close()
	tfErr := tf.Close()
	if res.Err != nil {
		return nil, fmt.Errorf("run: %w", res.Err)
	}
	if twErr != nil {
		return nil, fmt.Errorf("trace close: %w", twErr)
	}
	if tfErr != nil {
		return nil, fmt.Errorf("trace file: %w", tfErr)
	}

	sum := report.SummarizeCampaign(rig, res)
	if err := writeReportFile(s.store.ReportPath(j.id), sum); err != nil {
		return sum, fmt.Errorf("report artifact: %w", err)
	}
	return sum, nil
}

// writeReportFile persists the report.json artifact.
func writeReportFile(path string, sum *report.CampaignSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sum.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cancelAll cancels every job's context.
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
}

// ErrShutdownForced reports that Shutdown's context expired and the
// remaining campaigns were canceled rather than drained.
var ErrShutdownForced = errors.New("server: shutdown deadline hit; remaining jobs canceled")

// Shutdown stops the server: intake closes immediately (new
// submissions get 503), then the worker pool drains — queued and
// running jobs finish normally. If ctx expires first, every remaining
// job is canceled and Shutdown returns ErrShutdownForced once the
// workers exit. Either way, SSE handlers are released.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.cancelAll()
		s.baseCancel()
		<-done
		return ErrShutdownForced
	}
}
