package server

// Live telemetry streaming. Each job owns a hub; the job runner
// attaches a streamProbe to the cluster's serial post phase (the same
// discipline as the trace probe and the fault plane), and every SSE
// handler subscribes to the hub. Publishing never blocks the
// simulation: a subscriber whose buffer is full loses that record and
// the hub counts the drop.
//
// The probe rides the step loop, so it obeys the hot-path allocation
// budget: per-node observables and fail-safe / fault edges come from
// cheap constant-cost accessors (FailSafe() booleans, the injectors'
// atomic State loads) sampled at the stream cadence — never from the
// event-log copying accessors, which exist for end-of-run reporting.
// Stream events are therefore quantized to the sample cadence; the
// full-resolution logs live in the job's report artifact.

import (
	"encoding/json"
	"sync"
	"time"

	"thermctl/internal/config"
	"thermctl/internal/core"
	"thermctl/internal/faults"
	"thermctl/internal/metrics"
)

// event is one pre-marshaled SSE record.
type event struct {
	// kind becomes the SSE "event:" field: sample, fault, failsafe or
	// state.
	kind string
	// data is the marshaled JSON payload.
	data []byte
}

// hub fans events out to the job's stream subscribers.
type hub struct {
	mu     sync.Mutex
	subs   map[chan event]struct{}
	closed bool
	// dropped counts records lost to slow subscribers (nil-safe).
	dropped *metrics.Counter
}

func newHub(dropped *metrics.Counter) *hub {
	return &hub{subs: map[chan event]struct{}{}, dropped: dropped}
}

// subscribe registers a buffered subscriber channel, or returns nil
// when the hub is already closed (the job is terminal; there is
// nothing left to stream).
func (h *hub) subscribe() chan event {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	// 256 events of headroom ≈ four simulated minutes of samples; a
	// reader further behind than that is not consuming.
	ch := make(chan event, 256)
	h.subs[ch] = struct{}{}
	return ch
}

// unsubscribe removes a subscriber. Safe after close.
func (h *hub) unsubscribe(ch chan event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, ch)
}

// publish fans one event out without blocking: full subscribers drop
// the record.
func (h *hub) publish(ev event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.dropped.Inc()
		}
	}
}

// close ends the stream: every subscriber's channel is closed and
// future subscribes return nil.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}

// nodeSample is one node's observables at a sample instant.
type nodeSample struct {
	Temp  float64 `json:"temp_c"`
	Duty  float64 `json:"duty_pct"`
	Freq  float64 `json:"freq_ghz"`
	Power float64 `json:"power_w"`
}

// sampleRec is the payload of a "sample" stream event.
type sampleRec struct {
	TMS   int64        `json:"t_ms"`
	Nodes []nodeSample `json:"nodes"`
}

// faultRec is the payload of a "fault" stream event: one target's
// folded fault state changed between samples.
type faultRec struct {
	TMS    int64        `json:"t_ms"`
	Target string       `json:"target"`
	Active bool         `json:"active"`
	State  faults.State `json:"state"`
}

// failSafeRec is the payload of a "failsafe" stream event: one
// controller lane's fail-safe escalation engaged or recovered.
type failSafeRec struct {
	TMS     int64  `json:"t_ms"`
	Node    string `json:"node"`
	Lane    string `json:"lane"`
	Engaged bool   `json:"engaged"`
}

// lane is one edge-detected fail-safe source: exactly one of ctl (fan
// or sleep ctlarray) and dvfs (the tDVFS daemon) is set.
type lane struct {
	node    string
	name    string
	ctl     *core.Controller
	dvfs    *core.TDVFS
	engaged bool
}

// failSafe reads the lane's current escalation state (a constant-cost
// boolean, safe on the step path).
func (l *lane) failSafe() bool {
	if l.ctl != nil {
		return l.ctl.FailSafe()
	}
	return l.dvfs.FailSafe()
}

// streamProbe publishes telemetry from the cluster's serial post
// phase: per-node samples at a fixed simulated cadence, plus fault and
// fail-safe transitions edge-detected at the same cadence. It runs
// after the sharded node-local phase each step, so every read observes
// a consistent step boundary.
type streamProbe struct {
	rig   *config.Rig
	hub   *hub
	every time.Duration
	next  time.Duration

	// lanes, injs and prevFault are wired at construction; OnStep only
	// reads the cheap accessors and flips the edge state in place.
	lanes     []lane
	targets   []string
	injs      []*faults.Injector
	prevFault []faults.State

	// rec/frec/fsrec are reused across emissions and passed by
	// pointer, so the step path never boxes a record into an
	// interface; only the marshaled bytes escape.
	rec   sampleRec
	frec  faultRec
	fsrec failSafeRec
	// encodeErrs counts marshal failures (nil-safe; structurally
	// impossible for these payloads, but never swallowed silently).
	encodeErrs *metrics.Counter
}

func newStreamProbe(rig *config.Rig, h *hub, every time.Duration, encodeErrs *metrics.Counter) *streamProbe {
	p := &streamProbe{
		rig:        rig,
		hub:        h,
		every:      every,
		rec:        sampleRec{Nodes: make([]nodeSample, len(rig.Cluster.Nodes))},
		encodeErrs: encodeErrs,
	}
	for i, nc := range rig.Nodes {
		name := rig.Cluster.Nodes[i].Name
		switch {
		case nc.Hybrid != nil:
			p.lanes = append(p.lanes,
				lane{node: name, name: "fan", ctl: nc.Hybrid.Fan},
				lane{node: name, name: "dvfs", dvfs: nc.Hybrid.DVFS})
		default:
			if nc.Fan != nil {
				p.lanes = append(p.lanes, lane{node: name, name: "fan", ctl: nc.Fan})
			}
			if nc.TDVFS != nil {
				p.lanes = append(p.lanes, lane{node: name, name: "dvfs", dvfs: nc.TDVFS})
			}
			if nc.Sleep != nil {
				p.lanes = append(p.lanes, lane{node: name, name: "sleep", ctl: nc.Sleep})
			}
		}
	}
	if rig.Plane != nil {
		for _, n := range rig.Cluster.Nodes {
			p.targets = append(p.targets, n.Name)
			p.injs = append(p.injs, rig.Plane.Injector(n.Name))
		}
		p.prevFault = make([]faults.State, len(p.injs))
	}
	return p
}

// OnStep implements cluster.Controller. Edge detection shares the
// sample gate: between samples the probe costs one comparison per
// step.
func (p *streamProbe) OnStep(now time.Duration) {
	if now < p.next {
		return
	}
	p.next += p.every
	nowMS := now.Milliseconds()

	c := p.rig.Cluster
	p.rec.TMS = nowMS
	for i, n := range c.Nodes {
		p.rec.Nodes[i] = nodeSample{
			Temp:  n.Sensor.Read(),
			Duty:  n.Fan.Duty(),
			Freq:  n.CPU.FreqGHz(),
			Power: n.Power().Total(),
		}
	}
	p.emit("sample", &p.rec)

	for i := range p.lanes {
		l := &p.lanes[i]
		if eng := l.failSafe(); eng != l.engaged {
			l.engaged = eng
			p.fsrec = failSafeRec{TMS: nowMS, Node: l.node, Lane: l.name, Engaged: eng}
			p.emit("failsafe", &p.fsrec)
		}
	}

	for i, inj := range p.injs {
		if st := inj.State(); st != p.prevFault[i] {
			p.prevFault[i] = st
			p.frec = faultRec{TMS: nowMS, Target: p.targets[i], Active: st != (faults.State{}), State: st}
			p.emit("fault", &p.frec)
		}
	}
}

// emit marshals and publishes one event.
func (p *streamProbe) emit(kind string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		p.encodeErrs.Inc()
		return
	}
	p.hub.publish(event{kind: kind, data: data})
}
