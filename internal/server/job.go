package server

import (
	"context"
	"sync"
	"time"

	"thermctl/internal/config"
	"thermctl/internal/report"
)

// State is a job's lifecycle position.
type State string

// The job states. queued → running → one of the terminal three.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Job is one submitted campaign. All mutable fields are guarded by mu;
// the identity fields (id, scenario, ctx/cancel, hub, dir) are set at
// construction and never change.
type Job struct {
	id       string
	scenario config.Scenario
	ctx      context.Context
	cancel   context.CancelFunc
	hub      *hub
	dir      string

	mu        sync.Mutex
	state     State
	errText   string
	submitted time.Time
	started   time.Time
	finished  time.Time
	summary   *report.CampaignSummary
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Cancel requests cancellation: the job's context is canceled (a
// running campaign stops at the next round boundary) and a job still
// in the queue is marked canceled immediately so its worker skips it.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.finished = time.Now()
	}
	j.mu.Unlock()
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// markRunning flips a queued job to running; it reports false when the
// job was already canceled (the worker then skips it).
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish records the terminal state. err and summary may be nil.
func (j *Job) finish(st State, err error, sum *report.CampaignSummary) {
	j.mu.Lock()
	j.state = st
	if err != nil {
		j.errText = err.Error()
	}
	j.summary = sum
	j.finished = time.Now()
	j.mu.Unlock()
}

// View is the job's JSON wire representation.
type View struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Program and Nodes echo the submitted scenario.
	Program string `json:"program,omitempty"`
	Nodes   int    `json:"nodes"`
	// Wall-clock lifecycle timestamps, RFC 3339.
	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// ExecTimeMS is the simulated campaign length, present once the
	// job is terminal (from the report summary).
	ExecTimeMS int64 `json:"exec_time_ms,omitempty"`
	// Artifacts maps artifact names to their fetch paths once the job
	// has produced them.
	Artifacts map[string]string `json:"artifacts,omitempty"`
}

// view snapshots the job for the API.
func (j *Job) view() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:          j.id,
		Name:        j.scenario.Name,
		State:       j.state,
		Error:       j.errText,
		Program:     j.scenario.Program,
		Nodes:       j.scenario.Nodes,
		SubmittedAt: j.submitted.Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.Format(time.RFC3339Nano)
	}
	if j.summary != nil {
		v.ExecTimeMS = j.summary.ExecTimeMS
	}
	if j.state == StateDone || (j.state == StateCanceled && j.summary != nil) {
		v.Artifacts = map[string]string{
			"trace":  "/v1/jobs/" + j.id + "/trace",
			"report": "/v1/jobs/" + j.id + "/report",
		}
	}
	return v
}
