package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"thermctl/internal/config"
	"thermctl/internal/metrics"
	"thermctl/internal/report"
	"thermctl/internal/tracefile"
)

// btSpec is a small, fast campaign: the BT program on two nodes runs
// in ~0.1s of wall clock.
const btSpec = `{"nodes": 2, "program": "bt"}`

// newTestServer builds a server over a test temp dir. Callers mutate
// cfg via the argument; zero fields take the defaults.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil && !errors.Is(err, ErrShutdownForced) {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, ts
}

// submit posts a scenario document and decodes the accepted view.
func submit(t *testing.T, ts *httptest.Server, spec string) View {
	t.Helper()
	v, status := trySubmit(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", status)
	}
	return v
}

// trySubmit posts a scenario document and returns the view (zero on
// rejection) plus the HTTP status.
func trySubmit(t *testing.T, ts *httptest.Server, spec string) (View, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return View{}, resp.StatusCode
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	if v.ID == "" || v.State == "" {
		t.Fatalf("submit view missing id or state: %+v", v)
	}
	return v, resp.StatusCode
}

// getView fetches one job's current view.
func getView(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode view: %v", err)
	}
	return v
}

// waitTerminal polls until the job leaves the live states.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getView(t, ts, id)
		if v.State.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return View{}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v := submit(t, ts, btSpec)
	if v.State != StateQueued && v.State != StateRunning {
		t.Fatalf("fresh job state = %s", v.State)
	}
	if v.Nodes != 2 || v.Program != "bt" {
		t.Fatalf("view did not echo the scenario: %+v", v)
	}

	final := waitTerminal(t, ts, v.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", final.State, final.Error)
	}
	if final.ExecTimeMS <= 0 {
		t.Fatalf("done job has no exec time: %+v", final)
	}
	if final.Artifacts["trace"] == "" || final.Artifacts["report"] == "" {
		t.Fatalf("done job lists no artifacts: %+v", final)
	}
	if final.StartedAt == "" || final.FinishedAt == "" {
		t.Fatalf("done job missing timestamps: %+v", final)
	}

	// The report artifact decodes and matches the campaign.
	resp, err := http.Get(ts.URL + final.Artifacts["report"])
	if err != nil {
		t.Fatalf("GET report: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET report: status %d", resp.StatusCode)
	}
	sum, err := report.ReadCampaignSummary(resp.Body)
	if err != nil {
		t.Fatalf("decode report: %v", err)
	}
	// The report names the program canonically (BT.B.4), not by the
	// scenario's short selector.
	if !strings.HasPrefix(sum.Program, "BT") || len(sum.NodeStats) != 2 {
		t.Fatalf("report mismatch: %+v", sum)
	}
	if sum.ExecTimeMS != final.ExecTimeMS {
		t.Fatalf("report exec %dms, view %dms", sum.ExecTimeMS, final.ExecTimeMS)
	}
	if sum.ClusterAvgW <= 0 {
		t.Fatalf("report has no power: %+v", sum)
	}

	// The trace artifact is a valid .tct file with the cluster schema.
	fetchTrace(t, ts, final, 2)
}

// fetchTrace downloads the job's trace artifact and validates it with
// the tracefile reader, returning the series count.
func fetchTrace(t *testing.T, ts *httptest.Server, v View, nodes int) {
	t.Helper()
	resp, err := http.Get(ts.URL + v.Artifacts["trace"])
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", resp.StatusCode)
	}
	path := t.TempDir() + "/job.tct"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		t.Fatalf("download trace: %v", err)
	}
	f.Close()

	r, closer, err := tracefile.OpenFile(path)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	defer closer.Close()
	want := config.ClusterTraceSchema(nodes)
	if len(r.Schema()) != len(want) {
		t.Fatalf("trace has %d series, want %d", len(r.Schema()), len(want))
	}
}

func TestSubmitInvalidScenario(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, spec := range map[string]string{
		"bad json":        `{"nodes": `,
		"unknown program": `{"program": "mg"}`,
		"unknown field":   `{"porgram": "bt"}`,
		"bad workers":     `{"workers": -1}`,
	} {
		if _, status := trySubmit(t, ts, spec); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
}

func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/trace", "/v1/jobs/nope/report", "/v1/jobs/nope/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := submit(t, ts, btSpec)
	b := submit(t, ts, btSpec)
	waitTerminal(t, ts, a.ID)
	waitTerminal(t, ts, b.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Jobs []View `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Jobs) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(body.Jobs))
	}
	// Submission order.
	if body.Jobs[0].ID != a.ID || body.Jobs[1].ID != b.ID {
		t.Fatalf("list order %s, %s; want %s, %s", body.Jobs[0].ID, body.Jobs[1].ID, a.ID, b.ID)
	}
}

// deleteJob issues the cancel request and returns the status code.
func deleteJob(t *testing.T, ts *httptest.Server, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func TestCancelRunningJob(t *testing.T) {
	// A generator job with a huge simulated horizon: the simulator
	// covers roughly an hour of simulated time per 40ms of wall clock,
	// so only an enormous horizon guarantees the job cannot finish on
	// its own within the test.
	_, ts := newTestServer(t, Config{GeneratorHorizon: 1000 * time.Hour})
	v := submit(t, ts, `{"nodes": 2}`)

	deadline := time.Now().Add(10 * time.Second)
	for getView(t, ts, v.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if status := deleteJob(t, ts, v.ID); status != http.StatusAccepted {
		t.Fatalf("DELETE running: status %d, want 202", status)
	}
	final := waitTerminal(t, ts, v.ID)
	if final.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
	// A canceled run still yields its partial artifacts.
	if final.Artifacts["report"] == "" {
		t.Fatalf("canceled job lists no report: %+v", final)
	}

	// Canceling a terminal job conflicts.
	if status := deleteJob(t, ts, v.ID); status != http.StatusConflict {
		t.Fatalf("DELETE terminal: status %d, want 409", status)
	}
}

func TestQueueOverflow(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.hookRunning = func(*Job) { <-release }
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	// First job occupies the only worker (parked in the hook); the
	// second fills the queue; the third must bounce.
	a := submit(t, ts, btSpec)
	waitHookParked(t, s, a.ID)
	b := submit(t, ts, btSpec)
	if _, status := trySubmit(t, ts, btSpec); status != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", status)
	}
	if got := s.m.rejected[rejectQueue].Value(); got != 1 {
		t.Fatalf("rejected{queue_full} = %d, want 1", got)
	}

	// Canceling the queued job resolves it without running.
	if status := deleteJob(t, ts, b.ID); status != http.StatusAccepted {
		t.Fatalf("DELETE queued: status %d, want 202", status)
	}
	if st := getView(t, ts, b.ID).State; st != StateCanceled {
		t.Fatalf("queued job after cancel = %s, want canceled", st)
	}

	close(release)
	if final := waitTerminal(t, ts, a.ID); final.State != StateDone {
		t.Fatalf("first job = %s, want done", final.State)
	}
}

// waitHookParked waits until the job has flipped to running (the hook
// is holding the worker).
func waitHookParked(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j != nil && j.State() == StateRunning {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never parked in the hook")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestChaosHorizonRoundTrip(t *testing.T) {
	// The scenario-lifecycle fix end to end: an explicit chaos
	// horizon_ms submitted over the API must reach the fault generator
	// and come back in the report, not be silently replaced by the
	// derived default.
	_, ts := newTestServer(t, Config{})
	v := submit(t, ts, `{"nodes": 2, "program": "bt", "chaos": {"seed": 42, "horizon_ms": 4200}}`)
	final := waitTerminal(t, ts, v.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", final.State, final.Error)
	}
	resp, err := http.Get(ts.URL + final.Artifacts["report"])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sum, err := report.ReadCampaignSummary(resp.Body)
	if err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if sum.Chaos == nil {
		t.Fatal("report has no chaos summary")
	}
	if sum.Chaos.HorizonMS != 4200 {
		t.Fatalf("chaos horizon %dms, want the explicit 4200", sum.Chaos.HorizonMS)
	}
	if sum.Chaos.Seed != 42 {
		t.Fatalf("chaos seed %d, want 42", sum.Chaos.Seed)
	}
}

// sseEvent is one parsed frame from a stream response.
type sseEvent struct {
	kind string
	data string
}

// readSSE parses frames from an SSE response until the stream ends,
// the limit is hit, or stop returns true for a frame.
func readSSE(t *testing.T, body io.Reader, limit int, stop func(sseEvent) bool) []sseEvent {
	t.Helper()
	var out []sseEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	cur := sseEvent{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.kind == "" {
				continue
			}
			out = append(out, cur)
			if stop(cur) || len(out) >= limit {
				return out
			}
			cur = sseEvent{}
		}
	}
	return out
}

func TestStreamDeliversSamplesAndFinalState(t *testing.T) {
	// Campaigns are near-instant in wall clock, so the worker parks in
	// the test hook until the stream is attached — otherwise the job
	// finishes before the subscription exists.
	s, ts := newTestServer(t, Config{Workers: 1, GeneratorHorizon: 20 * time.Second})
	release := make(chan struct{})
	s.hookRunning = func(*Job) { <-release }
	v := submit(t, ts, `{"nodes": 2}`)
	waitHookParked(t, s, v.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	events := readSSE(t, resp.Body, 10_000, func(ev sseEvent) bool {
		if ev.kind != "state" {
			return false
		}
		var st View
		if err := json.Unmarshal([]byte(ev.data), &st); err != nil {
			t.Fatalf("state frame: %v", err)
		}
		return st.State.Terminal()
	})
	if len(events) == 0 {
		t.Fatal("stream delivered nothing")
	}
	if events[0].kind != "state" {
		t.Fatalf("first frame %q, want the state greeting", events[0].kind)
	}
	samples := 0
	lastT := int64(-1)
	for _, ev := range events {
		if ev.kind != "sample" {
			continue
		}
		samples++
		var rec struct {
			TMS   int64 `json:"t_ms"`
			Nodes []struct {
				Temp  float64 `json:"temp_c"`
				Power float64 `json:"power_w"`
			} `json:"nodes"`
		}
		if err := json.Unmarshal([]byte(ev.data), &rec); err != nil {
			t.Fatalf("sample frame: %v", err)
		}
		if len(rec.Nodes) != 2 {
			t.Fatalf("sample has %d nodes, want 2", len(rec.Nodes))
		}
		if rec.TMS <= lastT {
			t.Fatalf("samples out of order: %d after %d", rec.TMS, lastT)
		}
		lastT = rec.TMS
		if rec.Nodes[0].Temp < 10 || rec.Nodes[0].Temp > 150 {
			t.Fatalf("implausible temperature %v", rec.Nodes[0].Temp)
		}
	}
	if samples < 5 {
		t.Fatalf("stream delivered %d samples over a 20s campaign, want >= 5", samples)
	}
	last := events[len(events)-1]
	if last.kind != "state" {
		t.Fatalf("stream ended with %q, want the final state", last.kind)
	}
}

func TestStreamOnTerminalJobReturnsState(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v := submit(t, ts, btSpec)
	waitTerminal(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body, 10, func(sseEvent) bool { return false })
	if len(events) != 1 || events[0].kind != "state" {
		t.Fatalf("terminal stream = %+v, want exactly one state frame", events)
	}
	var st View
	if err := json.Unmarshal([]byte(events[0].data), &st); err != nil {
		t.Fatal(err)
	}
	if !st.State.Terminal() {
		t.Fatalf("terminal stream state = %s", st.State)
	}
}

func TestFailSafeEventsStreamUnderChaos(t *testing.T) {
	// A chaos campaign with a long horizon produces fault transitions;
	// the stream must carry them. The worker parks in the hook until
	// the stream is attached (see TestStreamDeliversSamplesAndFinalState).
	s, ts := newTestServer(t, Config{Workers: 1, GeneratorHorizon: 90 * time.Second})
	release := make(chan struct{})
	s.hookRunning = func(*Job) { <-release }
	v := submit(t, ts, `{"nodes": 2, "chaos": {"seed": 7, "horizon_ms": 90000}}`)
	waitHookParked(t, s, v.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	defer resp.Body.Close()
	events := readSSE(t, resp.Body, 100_000, func(ev sseEvent) bool {
		if ev.kind != "state" {
			return false
		}
		var st View
		if err := json.Unmarshal([]byte(ev.data), &st); err != nil {
			return false
		}
		return st.State.Terminal()
	})
	faults := 0
	for _, ev := range events {
		if ev.kind == "fault" {
			var rec struct {
				Target string `json:"target"`
			}
			if err := json.Unmarshal([]byte(ev.data), &rec); err != nil {
				t.Fatalf("fault frame: %v", err)
			}
			if rec.Target == "" {
				t.Fatal("fault frame without a target")
			}
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no fault transitions streamed from a chaos campaign")
	}
}

func TestShutdownRefusesNewWork(t *testing.T) {
	cfg := Config{Workers: 1, Dir: t.TempDir(), Registry: metrics.NewRegistry()}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	s.hookRunning = func(*Job) { <-release }
	a := submit(t, ts, btSpec)
	waitHookParked(t, s, a.ID)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// Wait for the drain flag, then verify intake refuses.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shutdown never flipped draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, status := trySubmit(t, ts, btSpec); status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", status)
	}
	if got := s.m.rejected[rejectDraining].Value(); got != 1 {
		t.Fatalf("rejected{draining} = %d, want 1", got)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
	if st := getView(t, ts, a.ID).State; st != StateDone {
		t.Fatalf("drained job = %s, want done", st)
	}
}

func TestShutdownForcedCancelsJobs(t *testing.T) {
	cfg := Config{Workers: 1, Dir: t.TempDir(), GeneratorHorizon: 1000 * time.Hour}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v := submit(t, ts, `{"nodes": 2}`)
	deadline := time.Now().Add(10 * time.Second)
	for getView(t, ts, v.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, ErrShutdownForced) {
		t.Fatalf("Shutdown = %v, want ErrShutdownForced", err)
	}
	if st := getView(t, ts, v.ID).State; st != StateCanceled {
		t.Fatalf("forced-shutdown job = %s, want canceled", st)
	}
}

func TestMetricsReflectJobFlow(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts := newTestServer(t, Config{Registry: reg})

	for i := 0; i < 3; i++ {
		v := submit(t, ts, btSpec)
		waitTerminal(t, ts, v.ID)
	}
	bad := submit(t, ts, `{"nodes": 2, "program": "bt", "chaos": {"seed": 1}}`)
	waitTerminal(t, ts, bad.ID)
	trySubmit(t, ts, `{"program": "mg"}`)

	if got := s.m.submitted.Value(); got != 4 {
		t.Errorf("submitted = %d, want 4", got)
	}
	if got := s.m.rejected[rejectInvalid].Value(); got != 1 {
		t.Errorf("rejected{invalid} = %d, want 1", got)
	}
	if got := s.m.finished[StateDone].Value(); got != 4 {
		t.Errorf("finished{done} = %d, want 4", got)
	}
	if got := s.m.jobSeconds.Count(); got != 4 {
		t.Errorf("job_seconds count = %d, want 4", got)
	}
	if d := s.m.queueDepth.Value(); d != 0 {
		t.Errorf("queue depth %v after drain, want 0", d)
	}
	if r := s.m.running.Value(); r != 0 {
		t.Errorf("running %v after drain, want 0", r)
	}

	// The instruments render on the standard exposition surface.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"thermsrv_jobs_submitted_total 4",
		`thermsrv_jobs_finished_total{state="done"} 4`,
		"thermsrv_queue_depth 0",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestScenarioArtifactPersisted(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Dir: dir})
	v := submit(t, ts, btSpec)
	waitTerminal(t, ts, v.ID)

	f, err := os.Open(fmt.Sprintf("%s/%s/scenario.json", dir, v.ID))
	if err != nil {
		t.Fatalf("scenario artifact: %v", err)
	}
	defer f.Close()
	spec, err := config.ReadScenario(f)
	if err != nil {
		t.Fatalf("stored scenario does not round-trip: %v", err)
	}
	if spec.Program != "bt" || spec.Nodes != 2 {
		t.Fatalf("stored scenario = %+v", spec)
	}
}

func TestArtifactsBeforeTerminalConflict(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	s.hookRunning = func(*Job) { <-release }
	defer close(release)

	v := submit(t, ts, btSpec)
	waitHookParked(t, s, v.ID)
	for _, path := range []string{"/trace", "/report"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("GET %s on running job: status %d, want 409", path, resp.StatusCode)
		}
	}
}

func TestNewRequiresDir(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a dir must fail")
	}
}
