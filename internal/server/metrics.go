package server

import "thermctl/internal/metrics"

// srvMetrics holds the campaign server's instrument handles. Every
// field is nil-safe (a nil handle ignores updates), so a server built
// without a registry pays one branch per update and nothing else.
type srvMetrics struct {
	// submitted counts accepted job submissions; rejected counts
	// refusals by reason (invalid spec, full queue, draining).
	submitted *metrics.Counter
	rejected  map[string]*metrics.Counter
	// finished counts jobs by terminal state.
	finished map[State]*metrics.Counter
	// queueDepth and running track the pool's live occupancy.
	queueDepth *metrics.Gauge
	running    *metrics.Gauge
	// jobSeconds observes wall-clock campaign latency.
	jobSeconds *metrics.Histogram
	// streamClients gauges live SSE subscribers; streamDropped counts
	// records lost to slow subscribers; encodeErrs counts stream
	// marshal failures.
	streamClients *metrics.Gauge
	streamDropped *metrics.Counter
	encodeErrs    *metrics.Counter
}

// Rejection reasons, the values of the rejected counter's reason label.
const (
	rejectInvalid  = "invalid"
	rejectQueue    = "queue_full"
	rejectDraining = "draining"
)

// jobLatencyBuckets span fast 4-node campaigns (~0.1s) through long
// fleet runs.
var jobLatencyBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// newSrvMetrics registers the server's instruments on reg, or returns
// an all-nil (no-op) set when reg is nil. Registration happens here,
// at wiring time, never on the job or stream paths.
func newSrvMetrics(reg *metrics.Registry) *srvMetrics {
	m := &srvMetrics{}
	if reg == nil {
		return m
	}
	m.submitted = reg.NewCounter("thermsrv_jobs_submitted_total",
		"Campaign jobs accepted into the queue.")
	m.rejected = map[string]*metrics.Counter{}
	for _, reason := range []string{rejectInvalid, rejectQueue, rejectDraining} {
		m.rejected[reason] = reg.NewCounter("thermsrv_jobs_rejected_total",
			"Campaign submissions refused, by reason.", metrics.L("reason", reason))
	}
	m.finished = map[State]*metrics.Counter{}
	for _, st := range []State{StateDone, StateFailed, StateCanceled} {
		m.finished[st] = reg.NewCounter("thermsrv_jobs_finished_total",
			"Campaign jobs reaching a terminal state, by state.", metrics.L("state", string(st)))
	}
	m.queueDepth = reg.NewGauge("thermsrv_queue_depth",
		"Jobs waiting in the campaign queue.")
	m.running = reg.NewGauge("thermsrv_jobs_running",
		"Campaigns currently executing on the worker pool.")
	m.jobSeconds = reg.NewHistogram("thermsrv_job_seconds",
		"Wall-clock campaign execution latency in seconds.", jobLatencyBuckets)
	m.streamClients = reg.NewGauge("thermsrv_stream_clients",
		"Live SSE stream subscribers.")
	m.streamDropped = reg.NewCounter("thermsrv_stream_dropped_total",
		"Stream records dropped because a subscriber's buffer was full.")
	m.encodeErrs = reg.NewCounter("thermsrv_stream_encode_errors_total",
		"Stream telemetry records that failed to marshal.")
	return m
}
