package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"thermctl/internal/metrics"
	"thermctl/internal/tracefile"
)

// TestLoadManyConcurrentCampaigns is the acceptance load smoke: 50
// campaigns submitted concurrently against a 4-worker pool while a
// dozen SSE clients stream, every job reaching a terminal state with
// a readable .tct artifact and the metrics ledger balancing.
func TestLoadManyConcurrentCampaigns(t *testing.T) {
	const (
		jobs       = 50
		sseClients = 12
	)
	reg := metrics.NewRegistry()
	s, ts := newTestServer(t, Config{
		Workers:    4,
		QueueDepth: jobs, // admission is not under test here
		Registry:   reg,
		// ~10s of simulated time keeps each campaign around a
		// millisecond of wall clock; the concurrency is the point.
		GeneratorHorizon: 10 * time.Second,
	})

	// Mix program-driven and generator-driven campaigns, some with a
	// fault plane.
	specFor := func(i int) string {
		switch i % 3 {
		case 0:
			return fmt.Sprintf(`{"nodes": 2, "program": "bt", "seed": %d}`, i+1)
		case 1:
			return fmt.Sprintf(`{"nodes": 2, "seed": %d}`, i+1)
		default:
			return fmt.Sprintf(`{"nodes": 2, "seed": %d, "chaos": {"seed": %d, "horizon_ms": 10000}}`, i+1, i+1)
		}
	}

	var wg sync.WaitGroup
	var idMu sync.Mutex
	ids := make([]string, jobs)
	getID := func(i int) string {
		idMu.Lock()
		defer idMu.Unlock()
		return ids[i]
	}
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := submit(t, ts, specFor(i))
			idMu.Lock()
			ids[i] = v.ID
			idMu.Unlock()
		}(i)
	}

	// SSE readers follow the whole job list as it appears, each
	// draining whatever streams it can reach until its jobs are
	// terminal.
	sseDone := make(chan int, sseClients)
	for c := 0; c < sseClients; c++ {
		go func(c int) {
			frames := 0
			// Each client owns a slice of the job indexes.
			for i := c; i < jobs; i += sseClients {
				// The job id may not be published yet; poll briefly.
				var id string
				for range [2000]struct{}{} {
					if id = getID(i); id != "" {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if id == "" {
					continue
				}
				resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
				if err != nil {
					continue
				}
				events := readSSE(t, resp.Body, 100_000, func(ev sseEvent) bool {
					if ev.kind != "state" {
						return false
					}
					var st View
					return json.Unmarshal([]byte(ev.data), &st) == nil && st.State.Terminal()
				})
				resp.Body.Close()
				frames += len(events)
			}
			sseDone <- frames
		}(c)
	}

	wg.Wait()
	frames := 0
	for c := 0; c < sseClients; c++ {
		frames += <-sseDone
	}
	if frames == 0 {
		t.Error("no SSE frames observed across all clients")
	}

	done, failed, canceled := 0, 0, 0
	for _, id := range ids {
		final := waitTerminal(t, ts, id)
		switch final.State {
		case StateDone:
			done++
		case StateFailed:
			failed++
			t.Errorf("job %s failed: %s", id, final.Error)
		case StateCanceled:
			canceled++
		}
		// Every finished campaign's trace artifact must be a valid
		// .tct file.
		if final.State == StateDone {
			path := s.store.TracePath(id)
			r, closer, err := tracefile.OpenFile(path)
			if err != nil {
				t.Errorf("job %s trace: %v", id, err)
				continue
			}
			if len(r.Schema()) == 0 {
				t.Errorf("job %s trace has no schema", id)
			}
			closer.Close()
		}
	}
	if done != jobs {
		t.Errorf("done=%d failed=%d canceled=%d, want all %d done", done, failed, canceled, jobs)
	}

	// The metrics ledger balances once everything is terminal.
	if got := s.m.submitted.Value(); got != jobs {
		t.Errorf("submitted = %d, want %d", got, jobs)
	}
	if got := s.m.finished[StateDone].Value(); got != uint64(done) {
		t.Errorf("finished{done} = %d, want %d", got, done)
	}
	if got := s.m.jobSeconds.Count(); got != jobs {
		t.Errorf("job_seconds count = %d, want %d", got, jobs)
	}
	if d := s.m.queueDepth.Value(); d != 0 {
		t.Errorf("queue depth %v after drain, want 0", d)
	}
	if r := s.m.running.Value(); r != 0 {
		t.Errorf("running %v after drain, want 0", r)
	}
}
