package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"thermctl/internal/config"
)

// TestExtendsGroupsRoundTripAPI is the workload plane's API acceptance
// path: a scenario composed with "extends" over a heterogeneous
// grouped fleet submits against a server configured with a scenario
// library, runs to completion, and the persisted scenario.json is the
// flattened document — groups, workload and all, with no trace of the
// extends chain.
func TestExtendsGroupsRoundTripAPI(t *testing.T) {
	lib := t.TempDir()
	base := `{
		"name": "fleet-base",
		"seed": 9,
		"workload": {"kind": "steps", "levels": [0.3, 0.7, 0.5], "hold_ms": 1500, "loop": true},
		"groups": [
			{"name": "std", "nodes": 2},
			{"name": "weakfan", "nodes": 2, "hardware": {"fan_max_rpm": 3000, "ambient_offset_c": 4}}
		],
		"control": {"fan": "dynamic", "dvfs": "tdvfs", "tuning": {"pp": 50}}
	}`
	if err := os.WriteFile(filepath.Join(lib, "fleet-base.json"), []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Dir: dir, ScenarioDir: lib, GeneratorHorizon: 8 * time.Second})

	derived := `{
		"extends": "fleet-base.json",
		"name": "fleet-hot",
		"workload": {"kind": "flashcrowd", "base": 0.2, "peak": 0.95, "at_ms": 2000, "decay_ms": 3000}
	}`
	v := submit(t, ts, derived)
	final := waitTerminal(t, ts, v.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s, want done (err %q)", final.State, final.Error)
	}

	// The persisted artifact is the flattened scenario: it re-reads
	// through plain ReadScenario (no library needed — no extends left)
	// with the base's groups and the child's workload override.
	f, err := os.Open(fmt.Sprintf("%s/%s/scenario.json", dir, v.ID))
	if err != nil {
		t.Fatalf("scenario artifact: %v", err)
	}
	defer f.Close()
	spec, err := config.ReadScenario(f)
	if err != nil {
		t.Fatalf("stored scenario does not round-trip: %v", err)
	}
	if spec.Name != "fleet-hot" || spec.Seed != 9 || spec.Nodes != 4 {
		t.Fatalf("stored scenario = %s/%d/%d nodes", spec.Name, spec.Seed, spec.Nodes)
	}
	if len(spec.Groups) != 2 || spec.Groups[1].Name != "weakfan" || spec.Groups[1].Hardware.FanMaxRPM != 3000 {
		t.Fatalf("groups lost in round trip: %+v", spec.Groups)
	}
	if spec.Workload == nil || spec.Workload.Kind != "flashcrowd" {
		t.Fatalf("workload override lost: %+v", spec.Workload)
	}

	// The trace artifact covers the whole 4-node grouped fleet.
	fetchTrace(t, ts, final, 4)
}

// TestExtendsRefusedWithoutLibrary: a server with no scenario library
// must reject extends rather than read files relative to its cwd.
func TestExtendsRefusedWithoutLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, status := trySubmit(t, ts, `{"extends": "anything.json"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
}

// TestProgramlessJobDefaultsWorkload: the pre-plane contract — a bare
// programless scenario still runs cpu-burn — now goes through the
// declarative plane, and the effective workload is persisted in the
// job's scenario.json rather than implied by server code.
func TestProgramlessJobDefaultsWorkload(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Dir: dir, GeneratorHorizon: 5 * time.Second})
	v := submit(t, ts, `{"nodes": 2}`)
	final := waitTerminal(t, ts, v.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (err %q)", final.State, final.Error)
	}
	f, err := os.Open(fmt.Sprintf("%s/%s/scenario.json", dir, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := config.ReadScenario(f)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Workload == nil || spec.Workload.Kind != "cpuburn" {
		t.Fatalf("defaulted workload not persisted: %+v", spec.Workload)
	}
}

// TestDeclaredWorkloadJobRuns: an explicit workload spec drives the
// job end to end through RunGenerators.
func TestDeclaredWorkloadJobRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{GeneratorHorizon: 5 * time.Second})
	v := submit(t, ts, `{
		"nodes": 2,
		"workload": {"kind": "random", "dist": "heavytail", "alpha": 1.3, "hold_ms": 500},
		"control": {"fan": "dynamic"}
	}`)
	final := waitTerminal(t, ts, v.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (err %q)", final.State, final.Error)
	}
	if final.ExecTimeMS != 5000 {
		t.Fatalf("exec_time_ms = %d, want the 5s horizon", final.ExecTimeMS)
	}
	if _, status := trySubmit(t, ts, `{"program": "bt", "workload": {"kind": "constant", "util": 1}}`); status != http.StatusBadRequest {
		t.Fatalf("program+workload submission: status %d, want 400", status)
	}
}
