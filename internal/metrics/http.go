package metrics

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler serving the registry in Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			panic(http.ErrAbortHandler)
		}
	})
}

// NewServeMux returns the daemons' observability mux: /metrics in
// Prometheus text format plus the standard net/http/pprof endpoints
// under /debug/pprof/, registered explicitly so nothing leaks onto
// http.DefaultServeMux.
func NewServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving the registry's observability mux on addr
// (host:port; port 0 picks an ephemeral port) and returns immediately.
// The caller owns the returned server and should Close it on shutdown.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewServeMux(r), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve returns http.ErrServerClosed (or a closed-listener
		// error) once Close tears the listener down; there is no caller
		// left to report it to.
		_ = srv.Serve(ln)
	}()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:49321".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the listener and waits for in-flight handlers (a
// scrape mid-response, a running profile) to finish, up to ctx's
// deadline. Prefer it over Close on any orderly exit so the last
// scrape of a run is not truncated; fall back to Close when the
// deadline expires.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close stops the listener and in-flight handlers immediately: the
// forceful fallback when a Shutdown deadline has already expired.
func (s *Server) Close() error { return s.srv.Close() }

// ShutdownTimeout drains the server gracefully for at most d, then
// closes whatever is left. The convenience shape every daemon's exit
// path wants.
func (s *Server) ShutdownTimeout(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return s.Close()
	}
	return nil
}
