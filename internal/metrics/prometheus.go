package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): one # HELP / # TYPE header
// per metric family, then one line per sample, histograms expanded
// into cumulative _bucket/_sum/_count series. Output order is
// deterministic: families sorted by name, samples by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	// Group consecutive samples into families: Snapshot sorts by name,
	// so one pass suffices.
	for i := 0; i < len(snap); {
		j := i
		for j < len(snap) && snap[j].Name == snap[i].Name {
			j++
		}
		if err := writeFamily(w, snap[i:j]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

func writeFamily(w io.Writer, family []Sample) error {
	head := family[0]
	if head.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", head.Name, escapeHelp(head.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", head.Name, head.Kind); err != nil {
		return err
	}
	for _, s := range family {
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, s Sample) error {
	switch s.Kind {
	case KindCounter, KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelString(s.Labels, "", 0), formatValue(s.Value))
		return err
	case KindHistogram:
		for _, b := range s.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				s.Name, labelString(s.Labels, "le", b.UpperBound), b.CumulativeCount); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labelString(s.Labels, "", 0), formatValue(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels, "", 0), s.Count)
		return err
	default:
		return fmt.Errorf("metrics: unknown kind %q", s.Kind)
	}
}

// labelString renders {k="v",...}, appending an le bucket label when
// leKey is non-empty. Empty label sets render as nothing.
func labelString(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(formatValue(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects: +Inf/-Inf
// spelled out, integers without exponent noise.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
