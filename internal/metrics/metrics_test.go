package metrics

import (
	"context"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_events_total", "events seen")
	g := r.NewGauge("test_level", "current level")

	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2.0", got)
	}
	g.SetBool(true)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge after SetBool(true) = %v, want 1", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.SetBool(true)
	h.Observe(1)
	h.ObserveSince(time.Now())
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d samples, want 1", len(snap))
	}
	s := snap[0]
	wantCum := []uint64{1, 3, 4, 5} // le=0.1, 1, 10, +Inf
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.CumulativeCount != wantCum[i] {
			t.Errorf("bucket %d (le=%v): cum = %d, want %d", i, b.UpperBound, b.CumulativeCount, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].UpperBound, 1) {
		t.Error("last bucket must be +Inf")
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.NewCounter("dup_total", "", L("a", "1"))
	mustPanic("duplicate", func() { r.NewCounter("dup_total", "", L("a", "1")) })
	mustPanic("kind clash", func() { r.NewGauge("dup_total", "", L("a", "2")) })
	mustPanic("bad name", func() { r.NewCounter("1starts_with_digit", "") })
	mustPanic("bad name chars", func() { r.NewCounter("has-dash", "") })
	mustPanic("bad label", func() { r.NewCounter("ok_total", "", L("bad-key", "v")) })
	mustPanic("unsorted buckets", func() { r.NewHistogram("h_seconds", "", []float64{1, 1}) })

	// Same name, same kind, different labels: allowed (one family).
	r.NewCounter("dup_total", "", L("a", "2"))
}

func TestLabelOrderNormalized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected duplicate panic for permuted labels")
		}
	}()
	r := NewRegistry()
	r.NewCounter("perm_total", "", L("a", "1"), L("b", "2"))
	r.NewCounter("perm_total", "", L("b", "2"), L("a", "1"))
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("app_requests_total", "requests handled", L("node", "n0"))
	c.Add(7)
	r.NewCounter("app_requests_total", "requests handled", L("node", "n1"))
	g := r.NewGauge("app_temperature_celsius", "die temperature")
	g.Set(51.25)
	h := r.NewHistogram("app_step_seconds", "step latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := strings.Join([]string{
		"# HELP app_requests_total requests handled",
		"# TYPE app_requests_total counter",
		`app_requests_total{node="n0"} 7`,
		`app_requests_total{node="n1"} 0`,
		"# HELP app_step_seconds step latency",
		"# TYPE app_step_seconds histogram",
		`app_step_seconds_bucket{le="0.01"} 1`,
		`app_step_seconds_bucket{le="0.1"} 2`,
		`app_step_seconds_bucket{le="+Inf"} 2`,
		"app_step_seconds_sum 0.055",
		"app_step_seconds_count 2",
		"# HELP app_temperature_celsius die temperature",
		"# TYPE app_temperature_celsius gauge",
		"app_temperature_celsius 51.25",
		"",
	}, "\n")
	if got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("esc_total", "", L("path", "a\\b\"c\nd"))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{path="a\\b\"c\nd"} 0`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "")
	g := r.NewGauge("conc_level", "")
	h := r.NewHistogram("conc_seconds", "", []float64{0.5})

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				// Concurrent scrapes must not race with updates.
				if i%100 == 0 {
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("hist count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-0.25*workers*per) > 1e-6 {
		t.Errorf("hist sum = %v, want %v", h.Sum(), 0.25*workers*per)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("served_total", "").Add(3)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "served_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}

// TestShutdownDrainsInFlight: Shutdown must let a request that is
// already being served run to completion (Close would sever it
// mid-body), then refuse new connections.
func TestShutdownDrainsInFlight(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	// A one-second runtime trace holds its connection busy long enough
	// that Shutdown provably overlaps an in-flight handler.
	resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/trace?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown during in-flight request: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request truncated by Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

// TestShutdownTimeoutIdle: the convenience wrapper returns promptly on
// an idle server and leaves it closed.
func TestShutdownTimeoutIdle(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ShutdownTimeout(5 * time.Second); err != nil {
		t.Fatalf("ShutdownTimeout on idle server: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("server still accepting connections after ShutdownTimeout")
	}
}
