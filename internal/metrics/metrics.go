// Package metrics is a small, dependency-free, concurrency-safe
// metrics layer for the thermal-control stack: counters, gauges and
// fixed-bucket histograms behind a registry that renders Prometheus
// text format and structured snapshots.
//
// # The registration / update contract
//
// Metric registration (Registry.NewCounter and friends) takes the
// registry lock, allocates, and validates names — none of which belongs
// on a control or simulation hot path. Updates (Counter.Inc,
// Gauge.Set, Histogram.Observe) are single atomic operations with no
// allocation and no locks, cheap enough to live inside Cluster.Step and
// the controllers' OnStep methods. The split is enforced statically by
// the metricsafe thermlint analyzer: registration must happen at
// wiring time (constructors, InstrumentMetrics methods, main), never in
// code reachable from a Step or OnStep method.
//
// Every instrument is nil-safe: calling Inc/Set/Observe on a nil
// pointer is a no-op, so components carry optional metric handles that
// cost one predictable branch when instrumentation is off.
//
// # Determinism
//
// Counter and gauge updates driven by the simulation are as
// deterministic as the simulation itself. Wall-clock timing (Now,
// Since, Histogram.ObserveSince) exists for latency observability only;
// it lives in this package — outside the determinism-linted simulation
// core — and must never feed back into control decisions or simulated
// state.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric at registration.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates metric types in snapshots and exposition.
type Kind string

// The metric kinds, named as Prometheus TYPE values.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing counter. The zero value is
// usable but unregistered; a nil *Counter ignores updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. A nil *Gauge ignores
// updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetBool stores 1 for true, 0 for false.
func (g *Gauge) SetBool(b bool) {
	if b {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Add adds delta to the gauge with a compare-and-swap loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: counts per upper bound plus a
// running sum and total count, all updated with single atomic
// operations. Bucket bounds are fixed at registration (a +Inf bucket is
// implicit), so Observe never allocates. A nil *Histogram ignores
// updates.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // Float64bits, CAS-updated
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the slice is
	// cache-resident; a branchy binary search buys nothing here.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the wall-clock seconds elapsed since start.
// Latency observability only — see the package comment on determinism.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Now returns the current wall-clock instant for timing hot-path
// sections. It exists so the determinism-linted simulation packages
// can time their own execution for latency histograms without touching
// package time directly; the resulting durations are observability
// data, never simulation state.
func Now() time.Time { return time.Now() }

// Since returns the wall-clock time elapsed since start. See Now.
func Since(start time.Time) time.Duration { return time.Since(start) }

// DefBuckets are general-purpose latency buckets in seconds, spanning
// microseconds (one cluster step at small scale) to seconds.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	kind   Kind
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// key identifies a metric uniquely: name plus the rendered label set.
func (m *metric) key() string {
	var b strings.Builder
	b.WriteString(m.name)
	for _, l := range m.labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// Registry holds a set of registered metrics. Registration is
// serialized by a mutex; registered instruments update lock-free.
// The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu   sync.Mutex
	byID map[string]*metric
	all  []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]*metric{}}
}

// NewCounter registers and returns a counter. It panics on an invalid
// name or a duplicate (name, labels) pair: registration is wiring-time
// code, where a configuration error should fail loudly and
// immediately.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: KindCounter, labels: labels, counter: c})
	return c
}

// NewGauge registers and returns a gauge. Panics like NewCounter.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: KindGauge, labels: labels, gauge: g})
	return g
}

// NewHistogram registers and returns a histogram over the given bucket
// upper bounds (strictly increasing; +Inf is implicit). Panics like
// NewCounter, and additionally on unsorted bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s: bounds not strictly increasing at %v", name, bounds[i]))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(h.bounds))
	r.register(&metric{name: name, help: help, kind: KindHistogram, labels: labels, hist: h})
	return h
}

func (r *Registry) register(m *metric) {
	if err := checkName(m.name); err != nil {
		panic(fmt.Sprintf("metrics: %v", err))
	}
	for _, l := range m.labels {
		if err := checkLabelKey(l.Key); err != nil {
			panic(fmt.Sprintf("metrics: %s: %v", m.name, err))
		}
	}
	// Normalize label order so {a=1,b=2} and {b=2,a=1} collide.
	sort.SliceStable(m.labels, func(i, j int) bool { return m.labels[i].Key < m.labels[j].Key })
	r.mu.Lock()
	defer r.mu.Unlock()
	id := m.key()
	if prior, ok := r.byID[id]; ok {
		panic(fmt.Sprintf("metrics: duplicate registration of %s (kind %s)", prior.name, prior.kind))
	}
	for _, prior := range r.all {
		if prior.name == m.name && prior.kind != m.kind {
			panic(fmt.Sprintf("metrics: %s registered as both %s and %s", m.name, prior.kind, m.kind))
		}
	}
	r.byID[id] = m
	r.all = append(r.all, m)
}

// checkName validates a Prometheus metric name.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// checkLabelKey validates a Prometheus label name.
func checkLabelKey(key string) error {
	if key == "" {
		return fmt.Errorf("empty label name")
	}
	for i, c := range key {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid label name %q", key)
		}
	}
	return nil
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound;
	// math.Inf(1) for the +Inf bucket.
	UpperBound float64
	// CumulativeCount counts observations ≤ UpperBound.
	CumulativeCount uint64
}

// Sample is one metric's point-in-time state.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label

	// Value carries the counter count or gauge level.
	Value float64
	// Count, Sum and Buckets are set for histograms only.
	Count   uint64
	Sum     float64
	Buckets []BucketCount
}

// Snapshot returns every registered metric's current state, sorted by
// name then label set, so renderings are deterministic.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	ms := append([]*metric(nil), r.all...)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].key() < ms[j].key()
	})
	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name, Help: m.help, Kind: m.kind, Labels: append([]Label(nil), m.labels...)}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.counter.Value())
		case KindGauge:
			s.Value = m.gauge.Value()
		case KindHistogram:
			h := m.hist
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				s.Buckets = append(s.Buckets, BucketCount{UpperBound: b, CumulativeCount: cum})
			}
			cum += h.inf.Load()
			s.Buckets = append(s.Buckets, BucketCount{UpperBound: math.Inf(1), CumulativeCount: cum})
			// The per-bucket loads above and Count/Sum below are not one
			// atomic snapshot; under concurrent observation the cumulative
			// count may trail Count by in-flight observations, which
			// Prometheus semantics tolerate.
			s.Count = h.Count()
			s.Sum = h.Sum()
		}
		out = append(out, s)
	}
	return out
}
