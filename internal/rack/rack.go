// Package rack models the air-side thermal coupling between nodes in a
// rack: every server's exhaust is warmer than its inlet by an amount
// proportional to its power draw, and a fraction of that exhaust
// recirculates into the inlets of the servers above it instead of
// returning to the CRAC. The result is the vertical hot spot the
// paper's introduction describes — "hot spots or pockets of elevated
// temperatures ... can be easily formed when room air circulation is
// not effective."
//
// The model is deliberately lumped (no CFD): node i's inlet targets
//
//	inlet_i = supply + Σ_{j<i} recirc^(i-j) · ΔT_exhaust_j,
//
// with ΔT_exhaust_j = K·P_j, and the actual inlet lags the target with
// a first-order mixing time constant. Coupled with the per-node RC
// networks this reproduces the phenomenology that matters to the
// controllers: top-of-rack nodes run hotter, their fans must work
// harder for the same die temperature, and a power change anywhere
// propagates upward within tens of seconds.
package rack

import (
	"fmt"
	"math"
	"time"

	"thermctl/internal/node"
)

// Config parameterizes the air model.
type Config struct {
	// SupplyC is the CRAC supply (cold-aisle) temperature.
	SupplyC float64
	// ExhaustKPerW converts node power to exhaust temperature rise
	// (1/(ṁ·cp) of the chassis airflow). A 1U box moving ~30 CFM gives
	// about 0.06 K/W.
	ExhaustKPerW float64
	// RecircFrac is the fraction of a node's exhaust heat reaching the
	// inlet one slot up; it decays geometrically with distance.
	RecircFrac float64
	// MixTimeConst is the first-order lag of inlet air composition.
	MixTimeConst time.Duration
}

// Default returns a plausibly calibrated rack: 27 °C supply, 0.06 K/W
// exhaust rise, 30% recirculation per slot, 20 s mixing.
func Default() Config {
	return Config{
		SupplyC:      27,
		ExhaustKPerW: 0.06,
		RecircFrac:   0.30,
		MixTimeConst: 20 * time.Second,
	}
}

// Rack couples an ordered set of nodes (index 0 = bottom slot). It
// implements the cluster Controller interface so it can be attached to
// a cluster like any daemon; on each step it updates every node's
// ambient temperature.
type Rack struct {
	cfg    Config
	nodes  []*node.Node
	inletC []float64
	last   time.Duration

	// targetC and rises are scratch buffers reused by targets(): it
	// runs on every controller step and must not allocate.
	targetC []float64
	rises   []float64
}

// New couples the nodes. Their current ambient is immediately set to
// the steady-state inlet profile for their current power draw.
func New(cfg Config, nodes []*node.Node) (*Rack, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("rack: no nodes")
	}
	if cfg.RecircFrac < 0 || cfg.RecircFrac >= 1 {
		return nil, fmt.Errorf("rack: recirculation fraction %v outside [0,1)", cfg.RecircFrac)
	}
	if cfg.ExhaustKPerW < 0 {
		return nil, fmt.Errorf("rack: exhaust rise %v K/W is negative", cfg.ExhaustKPerW)
	}
	if cfg.MixTimeConst <= 0 {
		// A non-positive time constant corrupts the first-order inlet
		// lag: τ<0 flips the exponential into runaway gain, and τ=0 is
		// almost always an uninitialized Config rather than a deliberate
		// request for instantaneous mixing.
		return nil, fmt.Errorf("rack: mixing time constant %v is not positive", cfg.MixTimeConst)
	}
	r := &Rack{
		cfg:     cfg,
		nodes:   nodes,
		inletC:  make([]float64, len(nodes)),
		targetC: make([]float64, len(nodes)),
		rises:   make([]float64, len(nodes)),
	}
	targets := r.targets()
	copy(r.inletC, targets)
	for i, n := range nodes {
		n.Thermal.SetAmbientC(r.inletC[i])
	}
	return r, nil
}

// targets returns the steady-state inlet temperature per slot for the
// nodes' instantaneous power draw. The returned slice is the rack's
// scratch buffer, valid until the next call.
func (r *Rack) targets() []float64 {
	out := r.targetC
	rises := r.rises
	for i, n := range r.nodes {
		rises[i] = r.cfg.ExhaustKPerW * n.Power().Total()
	}
	for i := range r.nodes {
		t := r.cfg.SupplyC
		f := r.cfg.RecircFrac
		for j := i - 1; j >= 0; j-- {
			t += f * rises[j]
			f *= r.cfg.RecircFrac
		}
		out[i] = t
	}
	return out
}

// InletC returns slot i's current inlet temperature.
func (r *Rack) InletC(i int) float64 { return r.inletC[i] }

// OnStep implements the cluster Controller interface: advance the air
// mixing and push the inlet temperatures into the nodes' thermal
// networks.
func (r *Rack) OnStep(now time.Duration) {
	dt := now - r.last
	r.last = now
	if dt <= 0 {
		return
	}
	targets := r.targets()
	tau := r.cfg.MixTimeConst.Seconds()
	alpha := 1.0
	if tau > 0 {
		alpha = 1 - math.Exp(-dt.Seconds()/tau)
	}
	for i, n := range r.nodes {
		r.inletC[i] += alpha * (targets[i] - r.inletC[i])
		n.Thermal.SetAmbientC(r.inletC[i])
	}
}
