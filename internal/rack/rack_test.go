package rack

import (
	"fmt"
	"testing"
	"time"

	"thermctl/internal/cluster"
	"thermctl/internal/core"
	"thermctl/internal/node"
	"thermctl/internal/workload"
)

func newNodes(t *testing.T, count int) []*node.Node {
	t.Helper()
	var nodes []*node.Node
	for i := 0; i < count; i++ {
		n, err := node.New(node.DefaultConfig(fmt.Sprintf("slot%d", i), uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	return nodes
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Default(), nil); err == nil {
		t.Error("empty rack accepted")
	}
	nodes := newNodes(t, 1)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"recirc fraction 1.0", func(c *Config) { c.RecircFrac = 1.0 }},
		{"negative recirc fraction", func(c *Config) { c.RecircFrac = -0.1 }},
		{"negative exhaust rise", func(c *Config) { c.ExhaustKPerW = -0.06 }},
		{"zero mixing time constant", func(c *Config) { c.MixTimeConst = 0 }},
		{"negative mixing time constant", func(c *Config) { c.MixTimeConst = -time.Second }},
	}
	for _, tc := range cases {
		bad := Default()
		tc.mutate(&bad)
		if _, err := New(bad, nodes); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestBottomSlotSeesSupplyAir(t *testing.T) {
	nodes := newNodes(t, 4)
	r, err := New(Default(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.InletC(0); got != Default().SupplyC {
		t.Errorf("bottom inlet = %v, want supply %v", got, Default().SupplyC)
	}
}

func TestInletGradientGrowsUpward(t *testing.T) {
	nodes := newNodes(t, 4)
	for _, n := range nodes {
		n.Settle(1) // hot exhaust everywhere
	}
	r, err := New(Default(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if r.InletC(i) <= r.InletC(i-1) {
			t.Errorf("inlet not increasing with slot: %v then %v", r.InletC(i-1), r.InletC(i))
		}
	}
	// A loaded 100 W node raises the next slot's inlet by
	// 0.3·0.06·100 ≈ 1.8 °C.
	d := r.InletC(1) - r.InletC(0)
	if d < 1 || d > 3 {
		t.Errorf("one-slot recirculation = %.2f °C, want ≈1.8", d)
	}
}

func TestMixingLag(t *testing.T) {
	nodes := newNodes(t, 2)
	r, err := New(Default(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	cold := r.InletC(1)
	// Load the bottom node and step the rack for five seconds: the top
	// inlet moves toward the hotter target but must not jump there.
	nodes[0].SetGenerator(workload.Constant(1))
	dt := 250 * time.Millisecond
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		for _, n := range nodes {
			n.Step(dt)
		}
		now += dt
		r.OnStep(now)
	}
	warmed := r.InletC(1)
	if warmed <= cold {
		t.Fatal("top inlet did not warm after loading the bottom node")
	}
	target := r.targets()[1]
	if warmed >= target {
		t.Errorf("inlet jumped to target instantly: %v vs target %v", warmed, target)
	}
}

func TestHotSlotRunsHotterWithoutControl(t *testing.T) {
	nodes := newNodes(t, 4)
	c, err := cluster.NewWithNodes(nodes, cluster.DefaultDt)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(1)
	r, err := New(Default(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	c.AddController(r)
	c.RunGenerator(workload.Constant(1), 3*time.Minute)
	bottom, top := nodes[0].TrueDieC(), nodes[3].TrueDieC()
	if top-bottom < 1.5 {
		t.Errorf("top slot only %.2f °C hotter than bottom; recirculation too weak", top-bottom)
	}
}

// TestUnifiedControlCompensatesHotSlot is the payoff: against a fixed
// equal fan speed on every slot, per-node dynamic control drives the
// hot slot's fan harder and brings the hottest die far below the
// fixed-duty case.
func TestUnifiedControlCompensatesHotSlot(t *testing.T) {
	run := func(dynamic bool) (topDieC, topDuty, bottomDuty float64) {
		nodes := newNodes(t, 4)
		c, err := cluster.NewWithNodes(nodes, cluster.DefaultDt)
		if err != nil {
			t.Fatal(err)
		}
		c.Settle(1)
		r, err := New(Default(), nodes)
		if err != nil {
			t.Fatal(err)
		}
		c.AddController(r)
		for i, n := range nodes {
			if dynamic {
				ctl, err := core.NewController(core.DefaultConfig(50),
					core.SysfsTemp(n.FS, n.Hwmon.TempInput),
					core.ActuatorBinding{Actuator: core.NewFanActuator(
						&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)})
				if err != nil {
					t.Fatal(err)
				}
				c.AddNodeController(i, ctl)
			} else {
				// Equal fixed duty on every slot: the gradient hits
				// the dies one to one.
				port := &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
				if err := port.SetDutyPercent(45); err != nil {
					t.Fatal(err)
				}
			}
		}
		c.RunGenerator(workload.Constant(1), 6*time.Minute)
		return nodes[3].TrueDieC(), nodes[3].Fan.Duty(), nodes[0].Fan.Duty()
	}

	fixedTop, _, _ := run(false)
	dynTop, topDuty, bottomDuty := run(true)
	if dynTop >= fixedTop-3 {
		t.Errorf("dynamic control left the hot slot at %.2f °C vs %.2f fixed-duty", dynTop, fixedTop)
	}
	if topDuty <= bottomDuty {
		t.Errorf("hot slot's fan (%.1f%%) not working harder than the cool slot's (%.1f%%)",
			topDuty, bottomDuty)
	}
}
