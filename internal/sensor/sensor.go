// Package sensor models the digital thermal sensors embedded in the
// processor, as read through lm-sensors on the paper's platform.
//
// A real on-die sensor does not report the true junction temperature: the
// reading is quantized by the ADC (0.25 °C on the Athlon64 family),
// carries per-part calibration offset, and jitters by a fraction of a
// degree between consecutive reads. The controller's two-level history
// window exists precisely to be robust to this measurement noise, so the
// simulation must include it.
package sensor

import (
	"errors"
	"math"
	"sync/atomic"

	"thermctl/internal/faults"
	"thermctl/internal/rng"
)

// ErrDropout is returned by checked reads while a sensor-dropout fault
// episode is active: the conversion failed and no fresh sample exists.
var ErrDropout = errors.New("sensor: reading unavailable (dropout)")

// Source supplies the true physical temperature, in °C.
type Source interface {
	Temperature() float64
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() float64

// Temperature implements Source.
func (f SourceFunc) Temperature() float64 { return f() }

// Config describes a thermal sensor's error characteristics.
type Config struct {
	// Quantum is the ADC resolution in °C; readings are rounded to a
	// multiple of it. Zero disables quantization.
	Quantum float64
	// NoiseStd is the standard deviation of per-read Gaussian noise, °C.
	NoiseStd float64
	// Offset is a fixed per-part calibration error, °C.
	Offset float64
}

// Default returns the sensor characteristics used in the reproduction:
// 0.25 °C quantization and 0.15 °C read noise, matching an Athlon64-class
// on-die diode read through lm-sensors.
func Default() Config {
	return Config{Quantum: 0.25, NoiseStd: 0.15}
}

// Sensor reads a physical temperature source with realistic error.
//
// Noise is keyed to a conversion tick, not to the Read call: a real ADC
// converts at a fixed rate and every consumer (lm-sensors, the fan
// controller chip, the BMC) sees the same latest conversion. When a
// tick source is installed (the node supplies its step counter), reads
// within one tick return identical values, so attaching an extra
// observer can never perturb a simulation. Without a tick source each
// Read is its own conversion, which is convenient for unit tests.
type Sensor struct {
	cfg       Config
	src       Source
	noise     *rng.Source
	noiseBase uint64
	tick      func() uint64

	// inj, when attached, drives stuck/dropout/spike fault episodes.
	inj *faults.Injector
	// lastGood holds the Float64bits of the most recent successful
	// sample; stuck episodes and unchecked reads during dropout replay
	// it. Atomic because the BMC reads concurrently with the sim loop.
	lastGood atomic.Uint64
	haveGood atomic.Bool
}

// New returns a sensor reading src with cfg's error model, drawing noise
// from the given stream. A nil stream disables noise.
func New(cfg Config, src Source, noise *rng.Source) *Sensor {
	s := &Sensor{cfg: cfg, src: src, noise: noise}
	if noise != nil {
		s.noiseBase = noise.Uint64()
	}
	return s
}

// SetTickSource installs the conversion-tick supplier. All reads within
// one tick value return the same sample.
func (s *Sensor) SetTickSource(fn func() uint64) { s.tick = fn }

// AttachInjector subscribes the sensor to a fault plane. Wiring time
// only; a nil injector (the default) means no faults.
func (s *Sensor) AttachInjector(inj *faults.Injector) { s.inj = inj }

// Read returns one temperature sample in °C, with offset, noise and
// quantization applied. It never fails: during a dropout episode it
// replays the last good sample (a real register holds its last
// conversion), so legacy consumers keep working. Fault-aware consumers
// should use ReadChecked.
//
//thermlint:unit °C
func (s *Sensor) Read() float64 {
	v, err := s.ReadChecked()
	if err != nil {
		if last, ok := s.lastGoodSample(); ok {
			return last
		}
		return 0
	}
	return v
}

// ReadChecked returns one temperature sample in °C, or an error while a
// dropout fault episode is active. A stuck episode freezes the reading
// at the last good sample without erroring.
//
//thermlint:unit °C
func (s *Sensor) ReadChecked() (float64, error) {
	st := s.inj.State()
	if st.SensorDropout {
		return 0, ErrDropout
	}
	if st.SensorStuck {
		if last, ok := s.lastGoodSample(); ok {
			return last, nil
		}
	}
	t := s.src.Temperature() + s.cfg.Offset + st.SensorSpikeC
	if s.noise != nil && s.cfg.NoiseStd > 0 {
		t += s.cfg.NoiseStd * s.drawNoise()
	}
	if s.cfg.Quantum > 0 {
		t = math.Round(t/s.cfg.Quantum) * s.cfg.Quantum
	}
	s.lastGood.Store(math.Float64bits(t))
	s.haveGood.Store(true)
	return t, nil
}

// lastGoodSample returns the most recent successful sample, if any.
func (s *Sensor) lastGoodSample() (float64, bool) {
	if !s.haveGood.Load() {
		return 0, false
	}
	return math.Float64frombits(s.lastGood.Load()), true
}

// drawNoise returns a standard-normal value: tick-keyed when a tick
// source is installed, stream-sequential otherwise.
func (s *Sensor) drawNoise() float64 {
	if s.tick == nil {
		return s.noise.Norm()
	}
	src := rng.At(s.noiseBase ^ (s.tick() * 0x9e3779b97f4a7c15))
	return src.Norm()
}

// Millidegrees returns one sample in millidegrees Celsius, the unit used
// by Linux hwmon temp*_input files.
//
//thermlint:unit milli°C
func (s *Sensor) Millidegrees() int64 {
	return int64(math.Round(s.Read() * 1000))
}

// CheckedMillidegrees is Millidegrees with dropout faults surfaced as an
// error, matching the EIO a dead hwmon temp*_input read returns.
//
//thermlint:unit milli°C
func (s *Sensor) CheckedMillidegrees() (int64, error) {
	v, err := s.ReadChecked()
	if err != nil {
		return 0, err
	}
	return int64(math.Round(v * 1000)), nil
}
