package sensor

import (
	"math"
	"testing"

	"thermctl/internal/rng"
)

func TestQuantization(t *testing.T) {
	s := New(Config{Quantum: 0.25}, SourceFunc(func() float64 { return 51.37 }), nil)
	got := s.Read()
	if got != 51.25 && got != 51.5 {
		t.Errorf("quantized read = %v, want multiple of 0.25 near 51.37", got)
	}
	if r := math.Mod(got, 0.25); math.Abs(r) > 1e-9 {
		t.Errorf("read %v is not a multiple of the 0.25 quantum", got)
	}
}

func TestNoNoiseWithoutStream(t *testing.T) {
	s := New(Config{Quantum: 0, NoiseStd: 5}, SourceFunc(func() float64 { return 40 }), nil)
	for i := 0; i < 10; i++ {
		if got := s.Read(); got != 40 {
			t.Fatalf("read with nil noise stream = %v, want exact 40", got)
		}
	}
}

func TestOffsetApplied(t *testing.T) {
	s := New(Config{Offset: 1.5}, SourceFunc(func() float64 { return 40 }), nil)
	if got := s.Read(); got != 41.5 {
		t.Errorf("read with offset = %v, want 41.5", got)
	}
}

func TestNoiseStatistics(t *testing.T) {
	src := SourceFunc(func() float64 { return 50 })
	s := New(Config{NoiseStd: 0.15}, src, rng.New(1))
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Read()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-50) > 0.01 {
		t.Errorf("noisy mean = %v, want ~50", mean)
	}
	if math.Abs(std-0.15) > 0.02 {
		t.Errorf("noise std = %v, want ~0.15", std)
	}
}

func TestDefaultRealism(t *testing.T) {
	s := New(Default(), SourceFunc(func() float64 { return 51.0 }), rng.New(7))
	for i := 0; i < 1000; i++ {
		v := s.Read()
		if v < 50 || v > 52 {
			t.Fatalf("default sensor read %v strayed more than 1°C from truth", v)
		}
	}
}

func TestMillidegrees(t *testing.T) {
	s := New(Config{}, SourceFunc(func() float64 { return 51.25 }), nil)
	if got := s.Millidegrees(); got != 51250 {
		t.Errorf("Millidegrees = %v, want 51250", got)
	}
}

func TestTickKeyedReadsAreStableWithinTick(t *testing.T) {
	// With a tick source installed, any number of reads within one tick
	// return the identical value — attaching observers cannot perturb
	// the noise stream.
	tick := uint64(0)
	s := New(Default(), SourceFunc(func() float64 { return 50 }), rng.New(5))
	s.SetTickSource(func() uint64 { return tick })
	first := s.Read()
	for i := 0; i < 10; i++ {
		if got := s.Read(); got != first {
			t.Fatalf("read %d within one tick = %v, first was %v", i, got, first)
		}
	}
	tick++
	changed := false
	for i := 0; i < 50 && !changed; i++ {
		if s.Read() != first {
			changed = true
		}
		tick++
	}
	if !changed {
		t.Error("advancing ticks never produced a different sample")
	}
}

func TestTickKeyedNoiseStatistics(t *testing.T) {
	tick := uint64(0)
	s := New(Config{NoiseStd: 0.15}, SourceFunc(func() float64 { return 50 }), rng.New(9))
	s.SetTickSource(func() uint64 { return tick })
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Read()
		sum += v
		sumSq += v * v
		tick++
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-50) > 0.01 {
		t.Errorf("tick-keyed mean = %v", mean)
	}
	if math.Abs(std-0.15) > 0.02 {
		t.Errorf("tick-keyed std = %v, want ~0.15", std)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	mk := func() *Sensor {
		return New(Default(), SourceFunc(func() float64 { return 45 }), rng.New(99))
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Read() != b.Read() {
			t.Fatal("sensor reads with identical seeds diverged")
		}
	}
}
