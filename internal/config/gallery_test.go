package config

import (
	"path/filepath"
	"testing"
)

// TestScenarioGallery validates every scenario document shipped under
// examples/: each must load (resolving its extends chain against the
// gallery directory), pass validation, and build a live rig. This is
// the CI gate that keeps the gallery honest — a spec-layer change that
// orphans a shipped scenario fails here, not in a user's hands.
func TestScenarioGallery(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	// The gallery ships the legacy program scenario plus the workload
	// plane set (base fleet, one per load shape, the heterogeneous
	// fleet); a glob that comes back short means the gallery moved and
	// this test is silently validating nothing.
	if len(files) < 7 {
		t.Fatalf("only %d gallery scenarios found, want >= 7", len(files))
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			s, err := LoadScenario(path)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			rig, err := s.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if rig.Cluster == nil || len(rig.Cluster.Nodes) != s.Nodes {
				t.Fatalf("rig has %d nodes, scenario declares %d", len(rig.Cluster.Nodes), s.Nodes)
			}
			if s.HasWorkload() && rig.Program == nil && len(rig.Generators) != s.Nodes {
				t.Fatalf("workload scenario built %d generators for %d nodes", len(rig.Generators), s.Nodes)
			}
		})
	}
}

// TestGalleryExtendsChains pins the composition semantics the gallery
// files rely on, so a merge-rule change shows up as a named diff here
// rather than an opaque Build failure above.
func TestGalleryExtendsChains(t *testing.T) {
	dir := filepath.Join("..", "..", "examples")

	diurnal, err := LoadScenario(filepath.Join(dir, "loadshape-diurnal.json"))
	if err != nil {
		t.Fatal(err)
	}
	if diurnal.Chaos != (ChaosSpec{}) {
		t.Error("loadshape-diurnal: \"chaos\": null failed to delete the inherited block")
	}
	if len(diurnal.Groups) != 3 || diurnal.Nodes != 8 {
		t.Errorf("loadshape-diurnal: inherited fleet = %d groups / %d nodes, want 3 / 8",
			len(diurnal.Groups), diurnal.Nodes)
	}

	steps, err := LoadScenario(filepath.Join(dir, "loadshape-steps.json"))
	if err != nil {
		t.Fatal(err)
	}
	if steps.Seed != 7 {
		t.Errorf("loadshape-steps: seed = %d, want the two-level override 7", steps.Seed)
	}
	if steps.Workload == nil || steps.Workload.Kind != "steps" {
		t.Errorf("loadshape-steps: workload kind = %v through the chain", steps.Workload)
	}
	if steps.Chaos.Seed != 42 {
		t.Error("loadshape-steps: chaos block lost through the two-level chain")
	}

	flash, err := LoadScenario(filepath.Join(dir, "loadshape-flashcrowd.json"))
	if err != nil {
		t.Fatal(err)
	}
	if flash.Control.Tuning.Pp != 25 {
		t.Errorf("loadshape-flashcrowd: pp = %d, want the nested override 25", flash.Control.Tuning.Pp)
	}
	if flash.Control.Fan != "dynamic" {
		t.Errorf("loadshape-flashcrowd: fan = %q, nested merge dropped the sibling key", flash.Control.Fan)
	}
}
