package config

// Node groups: the heterogeneous-fleet half of the scenario layer. A
// scenario may partition its fleet into named groups, each with its own
// hardware description (CPU frequency table, fan curve, thermal mass,
// inlet offset) and optionally its own workload spec — the
// heterogeneous-multiprocessor setting of Bhat et al. (PAPERS.md),
// where power-temperature dynamics differ per core class. Groups lay
// out contiguously in declaration order: a scenario with groups
// [{a, 3}, {b, 5}] owns node0..node2 in a and node3..node7 in b, and
// Scenario.Nodes is derived as the sum. Node naming, seeding and the
// struct-of-arrays hot-state layout are untouched — a grouped fleet
// differs from a default one only in the per-node configs handed to
// cluster.NewFromConfigs.

import (
	"fmt"
	"time"

	"thermctl/internal/cpu"
	"thermctl/internal/node"
	"thermctl/internal/rng"
	"thermctl/internal/workload"
)

// GroupSpec declares one node group.
type GroupSpec struct {
	// Name labels the group in reports (required, unique).
	Name string `json:"name"`
	// Nodes is the group size (required, >= 1).
	Nodes int `json:"nodes"`
	// Hardware overrides the default node hardware for this group;
	// zero-valued fields keep the defaults.
	Hardware HardwareSpec `json:"hardware,omitempty"`
	// Workload overrides the scenario-level workload for this group's
	// nodes (generator-driven scenarios only).
	Workload *workload.Spec `json:"workload,omitempty"`
}

// HardwareSpec overrides pieces of a node's hardware description.
// Every field is optional; zero keeps the repository default (the
// paper's Athlon64 platform).
type HardwareSpec struct {
	// FreqsGHz replaces the CPU P-state table with these frequencies,
	// highest first. Voltages are derived from the Athlon64 schedule by
	// linear interpolation over its 1.0–2.4 GHz / 1.10–1.40 V span.
	FreqsGHz []float64 `json:"freqs_ghz,omitempty"`
	// FanMaxRPM, FanMaxPowerW, FanTimeConstMS and FanFloorFrac reshape
	// the fan: top speed, electrical draw at full speed, rotor lag and
	// the minimum spin fraction.
	FanMaxRPM      float64 `json:"fan_max_rpm,omitempty"`
	FanMaxPowerW   float64 `json:"fan_max_power_w,omitempty"`
	FanTimeConstMS int     `json:"fan_time_const_ms,omitempty"`
	FanFloorFrac   float64 `json:"fan_floor_frac,omitempty"`
	// CdieJPerK, CsinkJPerK and RjsKPerW reshape the RC thermal path:
	// die and heatsink heat capacities and the junction-to-sink
	// resistance.
	CdieJPerK  float64 `json:"cdie_j_per_k,omitempty"`
	CsinkJPerK float64 `json:"csink_j_per_k,omitempty"`
	RjsKPerW   float64 `json:"rjs_k_per_w,omitempty"`
	// AmbientOffsetC shifts the group's inlet temperature (rack hot
	// spots). May be negative.
	AmbientOffsetC float64 `json:"ambient_offset_c,omitempty"`
	// BaseW replaces the constant platform power.
	BaseW float64 `json:"base_w,omitempty"`
}

// The Athlon64 voltage schedule's corners, used to derive a plausible
// voltage for an arbitrary frequency.
const (
	athlonLoGHz, athlonLoV = 1.0, 1.10
	athlonHiGHz, athlonHiV = 2.4, 1.40
)

// voltageFor interpolates the Athlon64 voltage schedule at f GHz,
// clamped to the schedule's corners so exotic tables stay physical.
func voltageFor(f float64) float64 {
	v := athlonLoV + (f-athlonLoGHz)/(athlonHiGHz-athlonLoGHz)*(athlonHiV-athlonLoV)
	if v < athlonLoV {
		v = athlonLoV
	}
	if v > athlonHiV {
		v = athlonHiV
	}
	return v
}

// validate reports the first invalid hardware field.
func (h *HardwareSpec) validate() error {
	for i, f := range h.FreqsGHz {
		if f <= 0 {
			return fmt.Errorf("freqs_ghz[%d] = %v: frequencies must be positive", i, f)
		}
		if i > 0 && f >= h.FreqsGHz[i-1] {
			return fmt.Errorf("freqs_ghz[%d] = %v: table must be strictly descending", i, f)
		}
	}
	if h.FanMaxRPM < 0 || h.FanMaxPowerW < 0 || h.FanTimeConstMS < 0 {
		return fmt.Errorf("fan parameters must be >= 0")
	}
	if h.FanFloorFrac < 0 || h.FanFloorFrac >= 1 {
		return fmt.Errorf("fan_floor_frac %v outside [0, 1)", h.FanFloorFrac)
	}
	if h.CdieJPerK < 0 || h.CsinkJPerK < 0 || h.RjsKPerW < 0 {
		return fmt.Errorf("thermal parameters must be >= 0")
	}
	if h.BaseW < 0 {
		return fmt.Errorf("base_w %v: must be >= 0", h.BaseW)
	}
	return nil
}

// apply overrides cfg's hardware with the spec's non-zero fields. cfg
// arrives fully defaulted (node.DefaultConfig), so partial overrides
// compose with the standard platform rather than zeroing siblings.
func (h *HardwareSpec) apply(cfg *node.Config) {
	if len(h.FreqsGHz) > 0 {
		table := make([]cpu.PState, len(h.FreqsGHz))
		for i, f := range h.FreqsGHz {
			table[i] = cpu.PState{FreqGHz: f, Voltage: voltageFor(f)}
		}
		cfg.CPU.Table = table
	}
	if h.FanMaxRPM > 0 {
		cfg.Fan.MaxRPM = h.FanMaxRPM
	}
	if h.FanMaxPowerW > 0 {
		cfg.Fan.MaxPower = h.FanMaxPowerW
	}
	if h.FanTimeConstMS > 0 {
		cfg.Fan.TimeConst = time.Duration(h.FanTimeConstMS) * time.Millisecond
	}
	if h.FanFloorFrac > 0 {
		cfg.Fan.FloorFrac = h.FanFloorFrac
	}
	if h.CdieJPerK > 0 {
		cfg.Thermal.CdieJPerK = h.CdieJPerK
	}
	if h.CsinkJPerK > 0 {
		cfg.Thermal.CsinkJPerK = h.CsinkJPerK
	}
	if h.RjsKPerW > 0 {
		cfg.Thermal.RjsKPerW = h.RjsKPerW
	}
	if h.AmbientOffsetC != 0 {
		cfg.AmbientOffsetC = h.AmbientOffsetC
	}
	if h.BaseW > 0 {
		cfg.BaseW = h.BaseW
	}
}

// BuiltGroup locates one group inside a built fleet: its nodes are
// Cluster.Nodes[First : First+Count].
type BuiltGroup struct {
	Name  string
	First int
	Count int
}

// nodeConfigs expands the scenario's groups (or its flat Nodes count)
// into per-node configurations. Naming and seeding are identical to
// cluster.New — "node<i>" with rng.Mix(seed, i) — so a scenario without
// hardware overrides builds the exact same fleet with or without
// groups.
func (s *Scenario) nodeConfigs() ([]node.Config, []BuiltGroup) {
	cfgs := make([]node.Config, 0, s.Nodes)
	var groups []BuiltGroup
	if len(s.Groups) == 0 {
		for i := 0; i < s.Nodes; i++ {
			cfgs = append(cfgs, node.DefaultConfig(fmt.Sprintf("node%d", i), rng.Mix(s.Seed, uint64(i))))
		}
		return cfgs, nil
	}
	i := 0
	for gi := range s.Groups {
		g := &s.Groups[gi]
		groups = append(groups, BuiltGroup{Name: g.Name, First: i, Count: g.Nodes})
		for k := 0; k < g.Nodes; k++ {
			cfg := node.DefaultConfig(fmt.Sprintf("node%d", i), rng.Mix(s.Seed, uint64(i)))
			g.Hardware.apply(&cfg)
			cfgs = append(cfgs, cfg)
			i++
		}
	}
	return cfgs, groups
}

// workloadSalt separates the workload plane's seed family from the
// node noise family: node i's sensor streams derive from
// rng.Mix(seed, i), so handing the same values to stateful generators
// would correlate demand with measurement noise. Build mixes the
// scenario seed with this salt first.
const workloadSalt = 0x776b6c64 // "wkld"

// HasWorkload reports whether the scenario declares an open-loop
// workload anywhere — at the scenario level or on any group. When
// false (and no program is set), Build leaves Rig.Generators nil and
// the caller attaches its own generators, the pre-plane contract.
func (s *Scenario) HasWorkload() bool {
	if s.Workload != nil {
		return true
	}
	for i := range s.Groups {
		if s.Groups[i].Workload != nil {
			return true
		}
	}
	return false
}

// buildGenerators instantiates one generator per node from the
// scenario's workload plane: each group's workload spec wins over the
// scenario-level one for that group's nodes. Returns nil when the
// scenario declares no workload anywhere (the caller attaches its own,
// the pre-plane contract). Node i's generator derives from
// rng.Mix(Mix(seed, workloadSalt), i) regardless of grouping, so
// regrouping a fleet never reseeds its demand.
func (s *Scenario) buildGenerators() ([]workload.Generator, error) {
	specFor := make([]*workload.Spec, s.Nodes)
	any := false
	if len(s.Groups) == 0 {
		for k := range specFor {
			specFor[k] = s.Workload
		}
		any = s.Workload != nil
	} else {
		i := 0
		for gi := range s.Groups {
			g := &s.Groups[gi]
			spec := g.Workload
			if spec == nil {
				spec = s.Workload
			}
			for k := 0; k < g.Nodes; k++ {
				specFor[i] = spec
				i++
			}
			any = any || spec != nil
		}
	}
	if !any {
		return nil, nil
	}
	family := rng.Mix(s.Seed, workloadSalt)
	gens := make([]workload.Generator, s.Nodes)
	for n := 0; n < s.Nodes; n++ {
		spec := specFor[n]
		if spec == nil {
			// Mixed fleets where only some groups declare a workload:
			// the others idle at zero utilization rather than nil (nil
			// would hold whatever generator the node had before).
			gens[n] = workload.Constant(0)
			continue
		}
		g, err := spec.Build(family, n)
		if err != nil {
			return nil, fmt.Errorf("config: node %d workload: %w", n, err)
		}
		gens[n] = g
	}
	return gens, nil
}
