package config

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"thermctl/internal/cluster"
	"thermctl/internal/trace"
	"thermctl/internal/tracefile"
	"thermctl/internal/workload"
)

// shadowProbe records the same observables as TraceProbe into an
// in-memory recorder, at the same cadence, from the same serial phase
// — the reference the file must reproduce byte for byte.
type shadowProbe struct {
	c     *cluster.Cluster
	rec   *trace.Recorder
	names []tracefile.SeriesDef
	every time.Duration
	next  time.Duration
}

func (p *shadowProbe) OnStep(now time.Duration) {
	if now < p.next {
		return
	}
	p.next += p.every
	for i, n := range p.c.Nodes {
		base := i * traceSeriesPerNode
		p.rec.Record(p.names[base+traceTemp].Name, now, n.Sensor.Read())
		p.rec.Record(p.names[base+traceDuty].Name, now, n.Fan.Duty())
		p.rec.Record(p.names[base+traceFreq].Name, now, n.CPU.FreqGHz())
		p.rec.Record(p.names[base+tracePower].Name, now, n.Power().Total())
	}
}

// buildTraced assembles a small scenario rig with the trace probe
// attached, runs a generator campaign, and returns the trace bytes
// plus the shadow recorder.
func buildTraced(t *testing.T, workers int) ([]byte, *trace.Recorder) {
	t.Helper()
	s := DefaultScenario()
	s.Nodes = 4
	s.Workers = workers
	s.Program = ""
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := rig.Cluster
	var buf bytes.Buffer
	w, err := AttachTraceProbe(c, &buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	shadow := &shadowProbe{c: c, rec: trace.NewRecorder(),
		names: ClusterTraceSchema(len(c.Nodes)), every: time.Second}
	c.AddController(shadow)
	c.RunGenerator(workload.Constant(0.85), 30*time.Second)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), shadow.rec
}

// TestTraceProbeRoundTrip is the acceptance check: re-reading a written
// file reproduces the in-memory series bit for bit — every name, every
// timestamp, every float64.
func TestTraceProbeRoundTrip(t *testing.T) {
	img, want := buildTraced(t, 1)
	r, err := tracefile.NewBytesReader(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Incomplete(); err != nil {
		t.Fatalf("Incomplete: %v", err)
	}
	got, err := r.ReadRecorder(tracefile.Window{})
	if err != nil {
		t.Fatal(err)
	}
	wantNames := want.Names()
	gotNames := got.Names()
	if len(wantNames) != len(gotNames) {
		t.Fatalf("series count %d, want %d", len(gotNames), len(wantNames))
	}
	for i := range wantNames {
		if gotNames[i] != wantNames[i] {
			t.Fatalf("series %d = %q, want %q", i, gotNames[i], wantNames[i])
		}
	}
	for _, name := range wantNames {
		ws, gs := want.Series(name), got.Series(name)
		if gs == nil || gs.Len() != ws.Len() {
			t.Fatalf("series %s: got %v points, want %d", name, gs, ws.Len())
		}
		for j := range ws.Points {
			wp, gp := ws.Points[j], gs.Points[j]
			if wp.T != gp.T || math.Float64bits(wp.V) != math.Float64bits(gp.V) {
				t.Fatalf("series %s point %d = %+v, want %+v (bit-exact)", name, j, gp, wp)
			}
		}
	}
	if ns, _ := r.Counts(); ns == 0 {
		t.Fatal("trace recorded no samples")
	}
}

// TestTraceProbeRejectsBadInterval: every <= 0 must fail with the named
// error instead of registering a probe whose schedule never advances
// (it would sample on every step, bloating the trace silently).
func TestTraceProbeRejectsBadInterval(t *testing.T) {
	s := DefaultScenario()
	s.Nodes = 1
	s.Program = ""
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, every := range []time.Duration{0, -time.Second} {
		w, err := AttachTraceProbe(rig.Cluster, &buf, every)
		if err == nil {
			t.Fatalf("interval %s accepted", every)
		}
		if !errors.Is(err, ErrTraceInterval) {
			t.Fatalf("interval %s: error %v is not ErrTraceInterval", every, err)
		}
		if w != nil {
			t.Fatalf("interval %s: writer returned alongside error", every)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected probe still wrote %d header bytes", buf.Len())
	}
}

// TestTraceBytesIdenticalAcrossWorkers is the PR 2/4 determinism
// discipline applied to the trace file: the recorded bytes must not
// depend on the worker count stepping the cluster.
func TestTraceBytesIdenticalAcrossWorkers(t *testing.T) {
	ref, _ := buildTraced(t, 1)
	if len(ref) == 0 {
		t.Fatal("empty reference trace")
	}
	for _, workers := range []int{2, 4} {
		img, _ := buildTraced(t, workers)
		if !bytes.Equal(ref, img) {
			t.Fatalf("trace bytes at workers=%d differ from workers=1 (%d vs %d bytes)",
				workers, len(img), len(ref))
		}
	}
}
