package config

import (
	"errors"
	"fmt"
	"io"
	"time"

	"thermctl/internal/cluster"
	"thermctl/internal/tracefile"
)

// ErrTraceInterval reports an AttachTraceProbe sampling interval <= 0.
// A zero or negative interval would leave the probe's schedule stuck
// (next never advances past now), silently sampling every step.
var ErrTraceInterval = errors.New("config: trace probe interval must be positive")

// Per-node observables recorded by the trace probe, in series-index
// order within each node's block.
const (
	traceTemp = iota
	traceDuty
	traceFreq
	tracePower
	traceSeriesPerNode
)

// ClusterTraceSchema declares the trace-file series of an n-node
// cluster: temp/duty/freq/power per node, named exactly like the
// in-memory experiment probes ("n3_temp"), with the physical units the
// unitsafe analyzer tracks in code.
func ClusterTraceSchema(n int) []tracefile.SeriesDef {
	defs := make([]tracefile.SeriesDef, 0, n*traceSeriesPerNode)
	for i := 0; i < n; i++ {
		prefix := fmt.Sprintf("n%d_", i)
		defs = append(defs,
			tracefile.SeriesDef{Name: prefix + "temp", Unit: "degC"},
			tracefile.SeriesDef{Name: prefix + "duty", Unit: "percent"},
			tracefile.SeriesDef{Name: prefix + "freq", Unit: "GHz"},
			tracefile.SeriesDef{Name: prefix + "power", Unit: "W"},
		)
	}
	return defs
}

// TraceProbe streams per-node observables to a tracefile.Writer on a
// fixed schedule. It runs as a cluster-level controller in the serial
// phase, which both serializes access to the writer and keeps the byte
// stream identical at every worker count — the same discipline the
// fault plane and experiment probes follow. Appends are allocation-free
// (Writer.Append is a hotalloc root), so tracing rides the step path
// within the bench gate.
type TraceProbe struct {
	c     *cluster.Cluster
	w     *tracefile.Writer
	every time.Duration
	next  time.Duration
}

// AttachTraceProbe writes the schema header for the cluster to dst and
// registers a probe sampling every interval. Close the returned writer
// after the run to flush chunks and the index footer; the first
// append/write error surfaces there.
//
// The step-path probe writes raw (uncompressed) chunks: on a
// single-core host the flusher's flate pass cannot overlap the step
// loop, and its cost alone breaches the 5% trace-overhead gate —
// while the delta+varint encoding already carries most of the size
// win. Offline writers (golden images) keep compression on.
func AttachTraceProbe(c *cluster.Cluster, dst io.Writer, every time.Duration) (*tracefile.Writer, error) {
	if every <= 0 {
		return nil, fmt.Errorf("%w (got %s)", ErrTraceInterval, every)
	}
	w, err := tracefile.NewWriter(dst, ClusterTraceSchema(len(c.Nodes)),
		&tracefile.Options{NoCompress: true})
	if err != nil {
		return nil, err
	}
	p := &TraceProbe{c: c, w: w, every: every}
	c.AddController(p)
	return w, nil
}

// OnStep implements cluster.Controller.
func (p *TraceProbe) OnStep(now time.Duration) {
	if now < p.next {
		return
	}
	p.next += p.every
	for i, n := range p.c.Nodes {
		base := i * traceSeriesPerNode
		p.w.Append(base+traceTemp, now, n.Sensor.Read())
		p.w.Append(base+traceDuty, now, n.Fan.Duty())
		p.w.Append(base+traceFreq, now, n.CPU.FreqGHz())
		p.w.Append(base+tracePower, now, n.Power().Total())
	}
}
