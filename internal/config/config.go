// Package config loads and validates daemon configuration for the
// thermctl tools: the policy parameter, actuator caps, thresholds and
// sampling rates an operator would set per machine class. The format is
// JSON, the common denominator for fleet configuration management.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"thermctl/internal/core"
)

// Config is the serialized daemon configuration. Zero-valued fields
// take the documented defaults when Normalize is applied.
type Config struct {
	// Pp is the control policy in [1, 100]. Default 50.
	Pp int `json:"pp"`
	// MaxFanDuty caps the fan, percent. Default 100.
	MaxFanDuty float64 `json:"max_fan_duty"`
	// ThresholdC is the tDVFS trigger temperature. Default 51.
	ThresholdC float64 `json:"threshold_c"`
	// HysteresisC is the tDVFS restore hysteresis. Default 3.
	HysteresisC float64 `json:"hysteresis_c"`
	// SampleMS is the controller sampling period in milliseconds.
	// Default 250 (four samples per second).
	SampleMS int `json:"sample_ms"`
	// TminC and TmaxC bound the safe operating range used by the
	// control-array index coefficient. Defaults 38 and 82.
	TminC float64 `json:"tmin_c"`
	TmaxC float64 `json:"tmax_c"`
	// EnableDVFS enables the in-band knob (tDVFS). Default true; JSON
	// uses a pointer so an absent field means default.
	EnableDVFS *bool `json:"enable_dvfs,omitempty"`
}

// Default returns the paper-parameter configuration.
func Default() Config {
	t := true
	return Config{
		Pp:          50,
		MaxFanDuty:  100,
		ThresholdC:  51,
		HysteresisC: 3,
		SampleMS:    250,
		TminC:       38,
		TmaxC:       82,
		EnableDVFS:  &t,
	}
}

// Normalize fills zero-valued fields with defaults.
func (c *Config) Normalize() {
	d := Default()
	if c.Pp == 0 {
		c.Pp = d.Pp
	}
	if c.MaxFanDuty == 0 {
		c.MaxFanDuty = d.MaxFanDuty
	}
	if c.ThresholdC == 0 {
		c.ThresholdC = d.ThresholdC
	}
	if c.HysteresisC == 0 {
		c.HysteresisC = d.HysteresisC
	}
	if c.SampleMS == 0 {
		c.SampleMS = d.SampleMS
	}
	if c.TminC == 0 {
		c.TminC = d.TminC
	}
	if c.TmaxC == 0 {
		c.TmaxC = d.TmaxC
	}
	if c.EnableDVFS == nil {
		c.EnableDVFS = d.EnableDVFS
	}
}

// Validate reports the first invalid field.
func (c *Config) Validate() error {
	if c.Pp < 1 || c.Pp > 100 {
		return fmt.Errorf("config: pp %d outside [1, 100]", c.Pp)
	}
	if c.MaxFanDuty < 1 || c.MaxFanDuty > 100 {
		return fmt.Errorf("config: max_fan_duty %v outside [1, 100]", c.MaxFanDuty)
	}
	if c.TmaxC <= c.TminC {
		return fmt.Errorf("config: tmax_c %v must exceed tmin_c %v", c.TmaxC, c.TminC)
	}
	if c.ThresholdC <= c.TminC || c.ThresholdC >= c.TmaxC {
		return fmt.Errorf("config: threshold_c %v outside (tmin, tmax)", c.ThresholdC)
	}
	if c.HysteresisC < 0 || c.HysteresisC > 20 {
		return fmt.Errorf("config: hysteresis_c %v outside [0, 20]", c.HysteresisC)
	}
	if c.SampleMS < 10 || c.SampleMS > 60000 {
		return fmt.Errorf("config: sample_ms %d outside [10, 60000]", c.SampleMS)
	}
	return nil
}

// Read parses, normalizes and validates a JSON configuration.
func Read(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	c.Normalize()
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Load reads a configuration file.
func Load(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// SamplePeriod returns the sampling period as a duration.
func (c *Config) SamplePeriod() time.Duration {
	return time.Duration(c.SampleMS) * time.Millisecond
}

// ControllerConfig converts to the fan controller's configuration.
func (c *Config) ControllerConfig() core.Config {
	return core.Config{
		Pp:           c.Pp,
		TminC:        c.TminC,
		TmaxC:        c.TmaxC,
		SamplePeriod: c.SamplePeriod(),
	}
}

// TDVFSConfig converts to the tDVFS daemon's configuration.
func (c *Config) TDVFSConfig() core.TDVFSConfig {
	cfg := core.DefaultTDVFSConfig(c.Pp)
	cfg.ThresholdC = c.ThresholdC
	cfg.HysteresisC = c.HysteresisC
	cfg.SamplePeriod = c.SamplePeriod()
	return cfg
}
