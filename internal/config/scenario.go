package config

// This file is the declarative scenario layer: one JSON document
// describing a whole control-plane deployment — node topology, the
// control techniques per node (fan method, DVFS daemon, sleep-state
// array), the policy parameter and tuning, an optional generated fault
// campaign, and metrics labeling — consumed by thermctld, clustersim
// and the experiments driver alike. Before it existed each cmd/ binary
// re-implemented the same per-node wiring loop from flags; Build and
// ControlSpec.BuildNode are that loop, written once.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"thermctl/internal/baseline"
	"thermctl/internal/cluster"
	"thermctl/internal/core"
	"thermctl/internal/cstates"
	"thermctl/internal/faults"
	"thermctl/internal/metrics"
	"thermctl/internal/node"
	"thermctl/internal/workload"
)

// ControlSpec selects the control techniques for one node class.
type ControlSpec struct {
	// Fan selects the out-of-band technique: dynamic (the paper's
	// unified controller), static (Figure 1 map), constant, or auto
	// (chip firmware curve, no software controller). Default dynamic.
	Fan string `json:"fan"`
	// DVFS selects the in-band daemon: none, tdvfs, or cpuspeed.
	// Default tdvfs.
	DVFS string `json:"dvfs"`
	// Sleep selects the processor sleep-state technique: none, or
	// ctlarray to drive cstates.Actuator through the same thermal
	// control array as the other actuators — on the dynamic fan
	// controller when one exists (one array per technique, one window,
	// one Pp, the paper's §3.2.2 shape), as a standalone ctlarray
	// controller otherwise. Default none.
	Sleep string `json:"sleep"`
	// Tuning carries the numeric knobs (Pp, duty cap, thresholds,
	// sampling); zero fields take the documented defaults.
	Tuning Config `json:"tuning"`
}

// ChaosSpec requests a generated fault campaign.
type ChaosSpec struct {
	// Seed generates the campaign (0 = no faults).
	Seed uint64 `json:"seed,omitempty"`
	// HorizonMS bounds the generated campaign in simulated
	// milliseconds. Zero derives a default at build time: 1.5× the
	// program's ideal execution time when the scenario runs a program,
	// 60000 otherwise. A non-zero value is honored as written, program
	// or not.
	HorizonMS int `json:"horizon_ms,omitempty"`
}

// MetricsSpec requests an instrumented run.
type MetricsSpec struct {
	// Enabled builds a registry and instruments every controller and
	// the cluster substrate.
	Enabled bool `json:"enabled,omitempty"`
	// Labels are constant labels stamped on every controller series,
	// in addition to the per-node node="..." label.
	Labels map[string]string `json:"labels,omitempty"`
}

// Scenario is the serialized deployment description.
type Scenario struct {
	// Name labels the scenario in logs.
	Name string `json:"name,omitempty"`
	// Nodes is the cluster size. Default 4. With Groups it is derived
	// (the sum of the group sizes) and must not be set explicitly.
	Nodes int `json:"nodes,omitempty"`
	// Seed seeds the simulation. Default 20100131.
	Seed uint64 `json:"seed"`
	// Workers is the stepping worker-pool size; 0 picks GOMAXPROCS at
	// build time, and a value above Nodes is clamped to Nodes by the
	// cluster's SetWorkers (a worker per node is the useful maximum —
	// not an error). Results are identical for any value.
	Workers int `json:"workers,omitempty"`
	// Program is the SPMD program to execute: bt, lu, or empty for
	// generator-driven runs (driven by Workload when set, otherwise the
	// caller attaches its own generators).
	Program string `json:"program,omitempty"`
	// Workload is the declarative open-loop workload: one spec,
	// instantiated per node with an independent seeded stream (see
	// workload.Spec.Build). Mutually exclusive with Program. Build
	// returns the per-node generators in Rig.Generators; run them with
	// Cluster.RunGenerators.
	Workload *workload.Spec `json:"workload,omitempty"`
	// Groups partitions the fleet into named node groups with
	// heterogeneous hardware and optional per-group workloads, laid out
	// contiguously in declaration order. When set, Nodes is derived as
	// the sum of the group sizes.
	Groups []GroupSpec `json:"groups,omitempty"`
	// Control selects the per-node techniques.
	Control ControlSpec `json:"control"`
	// Chaos optionally replays a generated fault campaign.
	Chaos ChaosSpec `json:"chaos,omitempty"`
	// Metrics optionally instruments the run.
	Metrics MetricsSpec `json:"metrics,omitempty"`
}

// DefaultScenario is the paper's standard 4-node unified-control run.
func DefaultScenario() Scenario {
	return Scenario{
		Nodes:   4,
		Seed:    20100131,
		Program: "bt",
		Control: ControlSpec{Fan: "dynamic", DVFS: "tdvfs", Sleep: "none", Tuning: Default()},
	}
}

// Normalize fills zero fields with the defaults.
func (s *Scenario) Normalize() {
	if len(s.Groups) > 0 && s.Nodes == 0 {
		for i := range s.Groups {
			s.Nodes += s.Groups[i].Nodes
		}
	}
	if s.Nodes == 0 {
		s.Nodes = 4
	}
	if s.Seed == 0 {
		s.Seed = 20100131
	}
	if s.Control.Fan == "" {
		s.Control.Fan = "dynamic"
	}
	if s.Control.DVFS == "" {
		s.Control.DVFS = "tdvfs"
	}
	if s.Control.Sleep == "" {
		s.Control.Sleep = "none"
	}
	// The chaos horizon defaults here only for generator-driven
	// scenarios; with a program the default derives from the program's
	// ideal time at build, and filling it now would shadow that (and a
	// filled value must win — see Build).
	if s.Chaos.Seed != 0 && s.Chaos.HorizonMS == 0 && s.Program == "" {
		s.Chaos.HorizonMS = 60000
	}
	s.Control.Tuning.Normalize()
}

// Validate reports the first invalid field, mirroring the flag
// validation the daemons used to do by hand.
func (s *Scenario) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("config: nodes %d: cluster needs at least one node", s.Nodes)
	}
	switch s.Program {
	case "", "bt", "lu":
	default:
		return fmt.Errorf("config: program %q: unknown program (want bt or lu)", s.Program)
	}
	if s.Program != "" && s.Workload != nil {
		return fmt.Errorf("config: program %q and a workload spec are mutually exclusive", s.Program)
	}
	if s.Workload != nil {
		if err := s.Workload.Validate(); err != nil {
			return fmt.Errorf("config: %w", err)
		}
	}
	if len(s.Groups) > 0 {
		sum := 0
		seen := make(map[string]bool, len(s.Groups))
		for i := range s.Groups {
			g := &s.Groups[i]
			if g.Name == "" {
				return fmt.Errorf("config: groups[%d]: missing name", i)
			}
			if seen[g.Name] {
				return fmt.Errorf("config: group %q declared twice", g.Name)
			}
			seen[g.Name] = true
			if g.Nodes < 1 {
				return fmt.Errorf("config: group %q: nodes %d: needs at least one node", g.Name, g.Nodes)
			}
			if err := g.Hardware.validate(); err != nil {
				return fmt.Errorf("config: group %q: %w", g.Name, err)
			}
			if g.Workload != nil {
				if s.Program != "" {
					return fmt.Errorf("config: group %q: per-group workloads and program %q are mutually exclusive", g.Name, s.Program)
				}
				if err := g.Workload.Validate(); err != nil {
					return fmt.Errorf("config: group %q: %w", g.Name, err)
				}
			}
			sum += g.Nodes
		}
		if s.Nodes != sum {
			return fmt.Errorf("config: nodes %d conflicts with the group sizes (sum %d); omit nodes when declaring groups", s.Nodes, sum)
		}
	}
	switch s.Control.Fan {
	case "dynamic", "static", "constant", "auto":
	default:
		return fmt.Errorf("config: fan %q: unknown fan method (want dynamic, static, constant or auto)", s.Control.Fan)
	}
	switch s.Control.DVFS {
	case "none", "tdvfs", "cpuspeed":
	default:
		return fmt.Errorf("config: dvfs %q: unknown DVFS daemon (want none, tdvfs or cpuspeed)", s.Control.DVFS)
	}
	switch s.Control.Sleep {
	case "none", "ctlarray":
	default:
		return fmt.Errorf("config: sleep %q: unknown sleep-state control (want none or ctlarray)", s.Control.Sleep)
	}
	if s.Workers < 0 {
		return fmt.Errorf("config: workers %d: must be >= 0 (0 means GOMAXPROCS)", s.Workers)
	}
	if s.Chaos.HorizonMS < 0 {
		return fmt.Errorf("config: chaos horizon_ms %d: must be >= 0 (0 derives a default)", s.Chaos.HorizonMS)
	}
	if s.Chaos.Seed != 0 && s.Control.Fan == "auto" && s.Control.DVFS == "none" && s.Control.Sleep == "none" {
		return fmt.Errorf("config: chaos seed %d: chaos needs a software controller to exercise", s.Chaos.Seed)
	}
	return s.Control.Tuning.Validate()
}

// ReadScenario parses, normalizes and validates a JSON scenario. With
// no scenario directory to resolve against, "extends" is refused; use
// ReadScenarioDir or LoadScenario for composed scenarios.
func ReadScenario(r io.Reader) (Scenario, error) {
	return ReadScenarioDir(r, "")
}

// LoadScenario reads a scenario file, resolving any "extends" chain
// against the file's own directory.
func LoadScenario(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return ReadScenarioDir(f, filepath.Dir(path))
}

// NodeOptions adjusts BuildNode for the caller's environment.
type NodeOptions struct {
	// Retrier, when non-nil, wraps every actuator write in the bounded
	// retry policy (thermctld's resilience posture).
	Retrier *faults.Retrier
	// Registry, when non-nil, instruments the controllers at wiring
	// time with the given constant labels.
	Registry *metrics.Registry
	Labels   []metrics.Label
}

// NodeControl is the per-node controller set a ControlSpec builds. The
// Controllers slice is what the caller attaches (in order); the typed
// fields expose the pieces observability code needs.
type NodeControl struct {
	// Controllers in attachment order.
	Controllers []cluster.Controller
	// Fan is the dynamic ctlarray controller (nil for other methods).
	// When Sleep is ctlarray and Fan is dynamic, the sleep actuator is
	// a second binding on this controller.
	Fan *core.Controller
	// Hybrid couples Fan and TDVFS when both are selected.
	Hybrid *core.Hybrid
	// TDVFS is the in-band daemon (nil unless dvfs=tdvfs).
	TDVFS *core.TDVFS
	// Sleep is the standalone sleep-state ctlarray controller, built
	// only when Sleep is ctlarray and no dynamic fan controller hosts
	// the actuator.
	Sleep *core.Controller
}

// BuildNode wires one node's controllers from the spec. This is the
// loop body thermctld, clustersim and the experiments driver shared by
// copy before the scenario layer.
func (cs ControlSpec) BuildNode(n *node.Node, opt NodeOptions) (*NodeControl, error) {
	out := &NodeControl{}
	read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
	fanPort := &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
	var freqPort core.FreqPort = &core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq}
	if opt.Retrier != nil {
		freqPort = &core.RetryFreqPort{Port: freqPort, R: opt.Retrier}
	}
	wrap := func(a core.Actuator) core.Actuator {
		if opt.Retrier == nil {
			return a
		}
		return &core.RetryActuator{Inner: a, R: opt.Retrier}
	}
	tune := cs.Tuning
	tune.Normalize()

	// Dynamic fan controller first: it may also host the sleep-state
	// array, and it is consumed by the hybrid when tDVFS is selected.
	var fanCtl *core.Controller
	switch cs.Fan {
	case "dynamic":
		bindings := []core.ActuatorBinding{{
			Actuator: wrap(core.NewFanActuator(fanPort, tune.MaxFanDuty)),
		}}
		if cs.Sleep == "ctlarray" {
			bindings = append(bindings, core.ActuatorBinding{
				Actuator: wrap(cstates.NewActuator(n.FS, n.CStates)),
			})
		}
		ctl, err := core.NewController(tune.ControllerConfig(), read, bindings...)
		if err != nil {
			return nil, err
		}
		fanCtl = ctl
		out.Fan = ctl
	case "static":
		s, err := baseline.NewStaticFan(baseline.DefaultStaticFanConfig(tune.MaxFanDuty), read, fanPort)
		if err != nil {
			return nil, err
		}
		out.Controllers = append(out.Controllers, s)
	case "constant":
		out.Controllers = append(out.Controllers, baseline.NewConstantFan(tune.MaxFanDuty, fanPort))
	case "auto":
		// chip firmware curve; nothing to attach
	}

	switch cs.DVFS {
	case "tdvfs":
		act, err := core.NewDVFSActuator(freqPort)
		if err != nil {
			return nil, err
		}
		d, err := core.NewTDVFS(tune.TDVFSConfig(), read, act)
		if err != nil {
			return nil, err
		}
		out.TDVFS = d
		if fanCtl != nil {
			h := core.NewHybrid(fanCtl, d)
			if opt.Registry != nil {
				h.InstrumentMetrics(opt.Registry, opt.Labels...)
			}
			out.Hybrid = h
			out.Controllers = append(out.Controllers, h)
			fanCtl = nil
		} else {
			if opt.Registry != nil {
				d.InstrumentMetrics(opt.Registry, opt.Labels...)
			}
			out.Controllers = append(out.Controllers, d)
		}
	case "cpuspeed":
		csd, err := baseline.NewCPUSpeed(baseline.DefaultCPUSpeedConfig(), n.FS, freqPort)
		if err != nil {
			return nil, err
		}
		out.Controllers = append(out.Controllers, csd)
	case "none":
	}
	if fanCtl != nil {
		if opt.Registry != nil {
			fanCtl.InstrumentMetrics(opt.Registry, opt.Labels...)
		}
		out.Controllers = append(out.Controllers, fanCtl)
	}

	// Standalone sleep-state array when no dynamic fan controller
	// hosts the actuator: the same decision law over the cstates mode
	// set alone, proving the array is technique-agnostic.
	if cs.Sleep == "ctlarray" && out.Fan == nil {
		ctl, err := core.NewController(tune.ControllerConfig(), read,
			core.ActuatorBinding{Actuator: wrap(cstates.NewActuator(n.FS, n.CStates))})
		if err != nil {
			return nil, err
		}
		if opt.Registry != nil {
			ctl.InstrumentMetrics(opt.Registry, opt.Labels...)
		}
		out.Sleep = ctl
		out.Controllers = append(out.Controllers, ctl)
	}
	return out, nil
}

// Rig is a built scenario: the cluster with every controller attached,
// plus handles to the pieces the caller reports on.
type Rig struct {
	Scenario Scenario
	Cluster  *cluster.Cluster
	// Program is the SPMD program named by the scenario (nil when the
	// scenario is generator-driven).
	Program *workload.Program
	// Registry is non-nil when the scenario enables metrics.
	Registry *metrics.Registry
	// Plane replays the generated fault campaign (nil without chaos).
	Plane *faults.Plane
	// ChaosHorizon is the effective fault-campaign bound handed to
	// faults.Generate: the scenario's explicit horizon_ms, or the
	// derived default (zero without chaos).
	ChaosHorizon time.Duration
	// Nodes holds the per-node controller sets, index-aligned with
	// Cluster.Nodes.
	Nodes []*NodeControl
	// Generators holds the per-node workload instances built from the
	// scenario's workload plane, index-aligned with Cluster.Nodes (nil
	// when the scenario runs a program or declares no workload). Run
	// with Cluster.RunGenerators.
	Generators []workload.Generator
	// Groups locates each declared node group inside Cluster.Nodes
	// (nil for ungrouped scenarios).
	Groups []BuiltGroup
}

// Build assembles the scenario: cluster, settle, fault campaign,
// per-node control, metrics. The caller runs the program (or its own
// loop) and reports.
func (s Scenario) Build() (*Rig, error) {
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rig := &Rig{Scenario: s}

	switch s.Program {
	case "bt":
		p := workload.BTB4()
		rig.Program = &p
	case "lu":
		p := workload.LUB4()
		rig.Program = &p
	}

	cfgs, groups := s.nodeConfigs()
	rig.Groups = groups
	c, err := cluster.NewFromConfigs(cfgs, cluster.DefaultDt)
	if err != nil {
		return nil, err
	}
	if rig.Program == nil {
		gens, err := s.buildGenerators()
		if err != nil {
			return nil, err
		}
		rig.Generators = gens
	}
	workers := s.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c.SetWorkers(workers)
	c.Settle(0)
	rig.Cluster = c

	if s.Metrics.Enabled {
		rig.Registry = metrics.NewRegistry()
		c.InstrumentMetrics(rig.Registry)
	}

	if s.Chaos.Seed != 0 {
		names := make([]string, len(c.Nodes))
		for i, n := range c.Nodes {
			names[i] = n.Name
		}
		// An explicit horizon_ms wins; only a zero field derives the
		// default from the program's ideal execution time. (It used to
		// be discarded whenever a program was set.)
		horizon := time.Duration(s.Chaos.HorizonMS) * time.Millisecond
		if horizon <= 0 && rig.Program != nil {
			horizon = time.Duration(1.5 * rig.Program.IdealSeconds(2.4) * float64(time.Second))
		}
		rig.ChaosHorizon = horizon
		plan := faults.Generate(s.Chaos.Seed, names, horizon)
		plane, err := c.ApplyFaults(plan, s.Seed)
		if err != nil {
			return nil, err
		}
		if rig.Registry != nil {
			plane.InstrumentMetrics(rig.Registry)
		}
		rig.Plane = plane
	}

	for i, n := range c.Nodes {
		opt := NodeOptions{Registry: rig.Registry}
		if rig.Registry != nil {
			opt.Labels = append(opt.Labels, metrics.L("node", n.Name))
			// Constant labels in sorted key order: metric identity must
			// not depend on map iteration order.
			keys := make([]string, 0, len(s.Metrics.Labels))
			for k := range s.Metrics.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				opt.Labels = append(opt.Labels, metrics.L(k, s.Metrics.Labels[k]))
			}
		}
		nc, err := s.Control.BuildNode(n, opt)
		if err != nil {
			return nil, err
		}
		// BuildNode's controllers observe and actuate only their own
		// node, so they join the sharded node-local phase.
		for _, ctl := range nc.Controllers {
			c.AddNodeController(i, ctl)
		}
		rig.Nodes = append(rig.Nodes, nc)
	}
	return rig, nil
}
