package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDefaultValidates(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.SamplePeriod() != 250*time.Millisecond {
		t.Errorf("default sample period %v", c.SamplePeriod())
	}
}

func TestReadFillsDefaults(t *testing.T) {
	c, err := Read(strings.NewReader(`{"pp": 25}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Pp != 25 {
		t.Errorf("pp = %d", c.Pp)
	}
	if c.MaxFanDuty != 100 || c.ThresholdC != 51 || c.SampleMS != 250 {
		t.Errorf("defaults not filled: %+v", c)
	}
	if c.EnableDVFS == nil || !*c.EnableDVFS {
		t.Error("EnableDVFS default should be true")
	}
}

func TestReadRespectsExplicitFalse(t *testing.T) {
	c, err := Read(strings.NewReader(`{"enable_dvfs": false}`))
	if err != nil {
		t.Fatal(err)
	}
	if *c.EnableDVFS {
		t.Error("explicit false overridden by default")
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"p": 50}`)); err == nil {
		t.Error("unknown field accepted (typo protection)")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestValidateBounds(t *testing.T) {
	cases := []string{
		`{"pp": 101}`,
		`{"max_fan_duty": 150}`,
		`{"tmin_c": 60, "tmax_c": 50}`,
		`{"threshold_c": 90}`,
		`{"hysteresis_c": 50}`,
		`{"sample_ms": 5}`,
	}
	for _, body := range cases {
		if _, err := Read(strings.NewReader(body)); err == nil {
			t.Errorf("invalid config accepted: %s", body)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "thermctl.json")
	body := `{"pp": 75, "max_fan_duty": 60, "threshold_c": 55}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pp != 75 || c.MaxFanDuty != 60 || c.ThresholdC != 55 {
		t.Errorf("loaded: %+v", c)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestConversions(t *testing.T) {
	c := Default()
	c.Pp = 25
	cc := c.ControllerConfig()
	if cc.Pp != 25 || cc.TminC != 38 || cc.TmaxC != 82 {
		t.Errorf("ControllerConfig: %+v", cc)
	}
	tc := c.TDVFSConfig()
	if tc.Pp != 25 || tc.ThresholdC != 51 || tc.HysteresisC != 3 {
		t.Errorf("TDVFSConfig: %+v", tc)
	}
}
