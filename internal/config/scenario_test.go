package config

import (
	"strings"
	"testing"
	"time"

	"thermctl/internal/workload"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	in := `{
		"name": "rt",
		"nodes": 3,
		"seed": 7,
		"program": "lu",
		"control": {
			"fan": "dynamic", "dvfs": "tdvfs", "sleep": "ctlarray",
			"tuning": {"pp": 25, "max_fan_duty": 80}
		},
		"chaos": {"seed": 9},
		"metrics": {"enabled": true, "labels": {"rack": "r1"}}
	}`
	s, err := ReadScenario(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 3 || s.Seed != 7 || s.Program != "lu" {
		t.Errorf("topology = %d/%d/%s", s.Nodes, s.Seed, s.Program)
	}
	if s.Control.Sleep != "ctlarray" || s.Control.Tuning.Pp != 25 {
		t.Errorf("control = %+v", s.Control)
	}
	if s.Chaos.HorizonMS != 60000 {
		t.Errorf("chaos horizon not defaulted: %d", s.Chaos.HorizonMS)
	}
	if !s.Metrics.Enabled || s.Metrics.Labels["rack"] != "r1" {
		t.Errorf("metrics = %+v", s.Metrics)
	}
}

func TestScenarioRejectsUnknownFields(t *testing.T) {
	if _, err := ReadScenario(strings.NewReader(`{"nodez": 4}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"bad fan", func(s *Scenario) { s.Control.Fan = "turbo" }, "fan"},
		{"bad dvfs", func(s *Scenario) { s.Control.DVFS = "ondemand" }, "dvfs"},
		{"bad sleep", func(s *Scenario) { s.Control.Sleep = "deep" }, "sleep"},
		{"bad program", func(s *Scenario) { s.Program = "ep" }, "program"},
		{"negative workers", func(s *Scenario) { s.Workers = -1 }, "workers"},
		{"bad pp", func(s *Scenario) { s.Control.Tuning.Pp = 200 }, "pp"},
		{"chaos without control", func(s *Scenario) {
			s.Control = ControlSpec{Fan: "auto", DVFS: "none", Sleep: "none", Tuning: Default()}
			s.Chaos.Seed = 3
		}, "chaos"},
	}
	for _, tc := range cases {
		s := DefaultScenario()
		s.Normalize()
		tc.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestScenarioBuildDefault builds the paper's standard run and checks
// the rig shape: a hybrid per node, the program resolved, no plane.
func TestScenarioBuildDefault(t *testing.T) {
	s := DefaultScenario()
	s.Nodes = 2
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rig.Program == nil || rig.Plane != nil || rig.Registry != nil {
		t.Fatalf("rig = program %v plane %v registry %v", rig.Program, rig.Plane, rig.Registry)
	}
	if len(rig.Nodes) != 2 {
		t.Fatalf("node controls = %d, want 2", len(rig.Nodes))
	}
	for _, nc := range rig.Nodes {
		if nc.Hybrid == nil || nc.Fan == nil || nc.TDVFS == nil || nc.Sleep != nil {
			t.Errorf("default wiring = %+v, want hybrid over fan+tdvfs", nc)
		}
		if len(nc.Controllers) != 1 {
			t.Errorf("controllers = %d, want 1 (the hybrid)", len(nc.Controllers))
		}
	}
}

// TestScenarioBuildSleepOnFan: sleep=ctlarray with a dynamic fan hosts
// the C-state actuator as the second binding of the fan's array — and a
// full generator-driven cluster run completes with the array engaged.
func TestScenarioBuildSleepOnFan(t *testing.T) {
	s := DefaultScenario()
	s.Nodes = 2
	s.Program = ""
	s.Control.Sleep = "ctlarray"
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	nc := rig.Nodes[0]
	if nc.Fan == nil || nc.Sleep != nil {
		t.Fatalf("wiring = %+v, want the sleep actuator on the fan controller", nc)
	}
	b := nc.Fan.Binding()
	if b.Slots() != 2 {
		t.Fatalf("fan binding slots = %d, want fan+cstates", b.Slots())
	}
	if got := b.Actuator(1).Name(); got != "cstates" {
		t.Fatalf("second actuator = %q, want cstates", got)
	}

	rig.Cluster.RunGenerator(workload.Constant(0.95), 120*time.Second)
	if mode := nc.Fan.Policy().Mode(1); mode == 0 {
		t.Error("C-state array never left C0 under sustained near-full load")
	}
	if b.Moves(1) == 0 {
		t.Error("no sleep-state moves recorded")
	}
}

// TestScenarioBuildStandaloneSleep: with no dynamic fan controller the
// sleep-state array runs as its own ctlarray controller.
func TestScenarioBuildStandaloneSleep(t *testing.T) {
	s := DefaultScenario()
	s.Nodes = 1
	s.Program = ""
	s.Control = ControlSpec{Fan: "auto", DVFS: "none", Sleep: "ctlarray", Tuning: Default()}
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	nc := rig.Nodes[0]
	if nc.Sleep == nil || nc.Fan != nil || nc.Hybrid != nil {
		t.Fatalf("wiring = %+v, want a standalone sleep controller", nc)
	}
	if got := nc.Sleep.Binding().Actuator(0).Name(); got != "cstates" {
		t.Fatalf("actuator = %q, want cstates", got)
	}
	rig.Cluster.RunGenerator(workload.Constant(0.9), 60*time.Second)
	if nc.Sleep.Binding().Moves(0) == 0 {
		t.Error("standalone sleep array never moved")
	}
}

// TestScenarioBuildChaosAndMetrics: chaos builds a plane, metrics build
// a registry, and controller series carry node plus constant labels.
func TestScenarioBuildChaosAndMetrics(t *testing.T) {
	s := DefaultScenario()
	s.Nodes = 2
	s.Program = ""
	s.Chaos = ChaosSpec{Seed: 11, HorizonMS: 30000}
	s.Metrics = MetricsSpec{Enabled: true, Labels: map[string]string{"rack": "r9"}}
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rig.Plane == nil || rig.Registry == nil {
		t.Fatalf("plane %v registry %v, want both", rig.Plane, rig.Registry)
	}
	var sb strings.Builder
	if err := rig.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`thermctl_controller_rounds_total{node="node0",rack="r9"}`,
		`thermctl_controller_rounds_total{node="node1",rack="r9"}`,
		`thermctl_tdvfs_rounds_total{node="node0",rack="r9"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestScenarioBuildMatchesHandWiring: the built default run must be
// step-for-step identical to the pre-scenario hand wiring (the hybrid
// path the goldens pin); spot-check by running the program and
// comparing the end state across two independent builds.
func TestScenarioBuildDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full BT runs")
	}
	run := func() (float64, float64, uint64) {
		s := DefaultScenario()
		s.Nodes = 2
		rig, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		res := rig.Cluster.RunProgram(*rig.Program, 0)
		n := rig.Cluster.Nodes[0]
		return res.ExecTime.Seconds(), n.Meter.AverageW(), rig.Nodes[0].Hybrid.Errors()
	}
	t1, w1, e1 := run()
	t2, w2, e2 := run()
	if t1 != t2 || w1 != w2 || e1 != e2 {
		t.Errorf("same scenario, different runs: %v/%v/%v vs %v/%v/%v", t1, w1, e1, t2, w2, e2)
	}
}
