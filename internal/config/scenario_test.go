package config

import (
	"strings"
	"testing"
	"time"

	"thermctl/internal/workload"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	in := `{
		"name": "rt",
		"nodes": 3,
		"seed": 7,
		"program": "lu",
		"control": {
			"fan": "dynamic", "dvfs": "tdvfs", "sleep": "ctlarray",
			"tuning": {"pp": 25, "max_fan_duty": 80}
		},
		"chaos": {"seed": 9},
		"metrics": {"enabled": true, "labels": {"rack": "r1"}}
	}`
	s, err := ReadScenario(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 3 || s.Seed != 7 || s.Program != "lu" {
		t.Errorf("topology = %d/%d/%s", s.Nodes, s.Seed, s.Program)
	}
	if s.Control.Sleep != "ctlarray" || s.Control.Tuning.Pp != 25 {
		t.Errorf("control = %+v", s.Control)
	}
	// With a program set, a zero horizon stays zero: Build derives the
	// default from the program's ideal time (Normalize filling 60000
	// here would shadow that derivation).
	if s.Chaos.HorizonMS != 0 {
		t.Errorf("chaos horizon filled despite program: %d", s.Chaos.HorizonMS)
	}
	if !s.Metrics.Enabled || s.Metrics.Labels["rack"] != "r1" {
		t.Errorf("metrics = %+v", s.Metrics)
	}
}

func TestScenarioRejectsUnknownFields(t *testing.T) {
	if _, err := ReadScenario(strings.NewReader(`{"nodez": 4}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"bad fan", func(s *Scenario) { s.Control.Fan = "turbo" }, "fan"},
		{"bad dvfs", func(s *Scenario) { s.Control.DVFS = "ondemand" }, "dvfs"},
		{"bad sleep", func(s *Scenario) { s.Control.Sleep = "deep" }, "sleep"},
		{"bad program", func(s *Scenario) { s.Program = "ep" }, "program"},
		{"negative workers", func(s *Scenario) { s.Workers = -1 }, "workers"},
		{"negative chaos horizon", func(s *Scenario) { s.Chaos = ChaosSpec{Seed: 3, HorizonMS: -1} }, "horizon_ms"},
		{"bad pp", func(s *Scenario) { s.Control.Tuning.Pp = 200 }, "pp"},
		{"chaos without control", func(s *Scenario) {
			s.Control = ControlSpec{Fan: "auto", DVFS: "none", Sleep: "none", Tuning: Default()}
			s.Chaos.Seed = 3
		}, "chaos"},
	}
	for _, tc := range cases {
		s := DefaultScenario()
		s.Normalize()
		tc.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestScenarioBuildDefault builds the paper's standard run and checks
// the rig shape: a hybrid per node, the program resolved, no plane.
func TestScenarioBuildDefault(t *testing.T) {
	s := DefaultScenario()
	s.Nodes = 2
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rig.Program == nil || rig.Plane != nil || rig.Registry != nil {
		t.Fatalf("rig = program %v plane %v registry %v", rig.Program, rig.Plane, rig.Registry)
	}
	if len(rig.Nodes) != 2 {
		t.Fatalf("node controls = %d, want 2", len(rig.Nodes))
	}
	for _, nc := range rig.Nodes {
		if nc.Hybrid == nil || nc.Fan == nil || nc.TDVFS == nil || nc.Sleep != nil {
			t.Errorf("default wiring = %+v, want hybrid over fan+tdvfs", nc)
		}
		if len(nc.Controllers) != 1 {
			t.Errorf("controllers = %d, want 1 (the hybrid)", len(nc.Controllers))
		}
	}
}

// TestScenarioBuildSleepOnFan: sleep=ctlarray with a dynamic fan hosts
// the C-state actuator as the second binding of the fan's array — and a
// full generator-driven cluster run completes with the array engaged.
func TestScenarioBuildSleepOnFan(t *testing.T) {
	s := DefaultScenario()
	s.Nodes = 2
	s.Program = ""
	s.Control.Sleep = "ctlarray"
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	nc := rig.Nodes[0]
	if nc.Fan == nil || nc.Sleep != nil {
		t.Fatalf("wiring = %+v, want the sleep actuator on the fan controller", nc)
	}
	b := nc.Fan.Binding()
	if b.Slots() != 2 {
		t.Fatalf("fan binding slots = %d, want fan+cstates", b.Slots())
	}
	if got := b.Actuator(1).Name(); got != "cstates" {
		t.Fatalf("second actuator = %q, want cstates", got)
	}

	rig.Cluster.RunGenerator(workload.Constant(0.95), 120*time.Second)
	if mode := nc.Fan.Policy().Mode(1); mode == 0 {
		t.Error("C-state array never left C0 under sustained near-full load")
	}
	if b.Moves(1) == 0 {
		t.Error("no sleep-state moves recorded")
	}
}

// TestScenarioBuildStandaloneSleep: with no dynamic fan controller the
// sleep-state array runs as its own ctlarray controller.
func TestScenarioBuildStandaloneSleep(t *testing.T) {
	s := DefaultScenario()
	s.Nodes = 1
	s.Program = ""
	s.Control = ControlSpec{Fan: "auto", DVFS: "none", Sleep: "ctlarray", Tuning: Default()}
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	nc := rig.Nodes[0]
	if nc.Sleep == nil || nc.Fan != nil || nc.Hybrid != nil {
		t.Fatalf("wiring = %+v, want a standalone sleep controller", nc)
	}
	if got := nc.Sleep.Binding().Actuator(0).Name(); got != "cstates" {
		t.Fatalf("actuator = %q, want cstates", got)
	}
	rig.Cluster.RunGenerator(workload.Constant(0.9), 60*time.Second)
	if nc.Sleep.Binding().Moves(0) == 0 {
		t.Error("standalone sleep array never moved")
	}
}

// TestScenarioBuildChaosAndMetrics: chaos builds a plane, metrics build
// a registry, and controller series carry node plus constant labels.
func TestScenarioBuildChaosAndMetrics(t *testing.T) {
	s := DefaultScenario()
	s.Nodes = 2
	s.Program = ""
	s.Chaos = ChaosSpec{Seed: 11, HorizonMS: 30000}
	s.Metrics = MetricsSpec{Enabled: true, Labels: map[string]string{"rack": "r9"}}
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rig.Plane == nil || rig.Registry == nil {
		t.Fatalf("plane %v registry %v, want both", rig.Plane, rig.Registry)
	}
	var sb strings.Builder
	if err := rig.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`thermctl_controller_rounds_total{node="node0",rack="r9"}`,
		`thermctl_controller_rounds_total{node="node1",rack="r9"}`,
		`thermctl_tdvfs_rounds_total{node="node0",rack="r9"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestScenarioWorkersMessageAndClamp: the workers error names the real
// constraint (0 is valid and means GOMAXPROCS), and a value above the
// node count is clamped by the cluster, not rejected.
func TestScenarioWorkersMessageAndClamp(t *testing.T) {
	s := DefaultScenario()
	s.Normalize()
	s.Workers = -1
	err := s.Validate()
	if err == nil {
		t.Fatal("workers -1 accepted")
	}
	if strings.Contains(err.Error(), "at least one worker") {
		t.Errorf("error %q still claims one worker is the minimum; 0 is valid", err)
	}
	if !strings.Contains(err.Error(), "GOMAXPROCS") {
		t.Errorf("error %q does not explain that 0 means GOMAXPROCS", err)
	}

	s = DefaultScenario()
	s.Nodes = 2
	s.Workers = 64 // more workers than nodes: clamped, never an error
	rig, err := s.Build()
	if err != nil {
		t.Fatalf("workers > nodes rejected: %v", err)
	}
	if got := rig.Cluster.Workers(); got != 2 {
		t.Errorf("workers = %d after clamp, want 2", got)
	}
}

// TestScenarioChaosHorizonExplicit: an explicit chaos.horizon_ms must
// bound the generated campaign even when a program is set — it used to
// be silently replaced by 1.5× the program's ideal time.
func TestScenarioChaosHorizonExplicit(t *testing.T) {
	s := DefaultScenario()
	s.Nodes = 2
	s.Program = "bt"
	s.Chaos = ChaosSpec{Seed: 11, HorizonMS: 4200}
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := 4200 * time.Millisecond
	if rig.ChaosHorizon != want {
		t.Fatalf("chaos horizon = %s, want the explicit %s", rig.ChaosHorizon, want)
	}
	for _, sch := range rig.Plane.Plan().Schedules {
		for _, ep := range sch.Episodes {
			if end := time.Duration(ep.Start) + time.Duration(ep.Duration); end > want {
				t.Errorf("episode %s+%s extends past the explicit horizon %s",
					time.Duration(ep.Start), time.Duration(ep.Duration), want)
			}
		}
	}
}

// TestScenarioChaosHorizonDerived: with a program and a zero horizon,
// Build derives 1.5× the program's ideal time as before.
func TestScenarioChaosHorizonDerived(t *testing.T) {
	s := DefaultScenario()
	s.Nodes = 2
	s.Program = "bt"
	s.Chaos = ChaosSpec{Seed: 11}
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(1.5 * rig.Program.IdealSeconds(2.4) * float64(time.Second))
	if rig.ChaosHorizon != want {
		t.Fatalf("derived chaos horizon = %s, want 1.5×ideal = %s", rig.ChaosHorizon, want)
	}
	// And generator-driven scenarios keep the documented 60 s default.
	s.Program = ""
	s.Chaos = ChaosSpec{Seed: 11}
	rig, err = s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rig.ChaosHorizon != 60*time.Second {
		t.Fatalf("generator chaos horizon = %s, want 60s", rig.ChaosHorizon)
	}
}

// TestScenarioBuildMatchesHandWiring: the built default run must be
// step-for-step identical to the pre-scenario hand wiring (the hybrid
// path the goldens pin); spot-check by running the program and
// comparing the end state across two independent builds.
func TestScenarioBuildDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full BT runs")
	}
	run := func() (float64, float64, uint64) {
		s := DefaultScenario()
		s.Nodes = 2
		rig, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		res := rig.Cluster.RunProgram(*rig.Program, 0)
		n := rig.Cluster.Nodes[0]
		return res.ExecTime.Seconds(), n.Meter.AverageW(), rig.Nodes[0].Hybrid.Errors()
	}
	t1, w1, e1 := run()
	t2, w2, e2 := run()
	if t1 != t2 || w1 != w2 || e1 != e2 {
		t.Errorf("same scenario, different runs: %v/%v/%v vs %v/%v/%v", t1, w1, e1, t2, w2, e2)
	}
}
