package config

import (
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"thermctl/internal/workload"
)

// groupedScenario is a heterogeneous two-group fleet under a seeded
// random workload — the full new surface in one document.
const groupedScenario = `{
	"name": "grouped",
	"seed": 11,
	"workload": {"kind": "random", "dist": "exponential", "mean": 0.4, "hold_ms": 2000},
	"groups": [
		{"name": "std", "nodes": 3},
		{"name": "hot", "nodes": 2,
		 "hardware": {"freqs_ghz": [2.0, 1.6, 1.0], "fan_max_rpm": 3200, "ambient_offset_c": 6},
		 "workload": {"kind": "flashcrowd", "base": 0.2, "peak": 0.95, "at_ms": 5000, "decay_ms": 20000}}
	],
	"control": {"fan": "dynamic", "dvfs": "tdvfs", "tuning": {"pp": 50}}
}`

// TestWorkloadByteIdenticalAcrossWorkers is the acceptance invariant
// of the workload plane: per-node seeded generators evaluated in the
// sharded phase produce bit-exact trajectories at every worker count,
// heterogeneous groups included.
func TestWorkloadByteIdenticalAcrossWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // exercise the real pool even on a 1-CPU host
	defer runtime.GOMAXPROCS(prev)
	run := func(workers int) []uint64 {
		s, err := ReadScenario(strings.NewReader(groupedScenario))
		if err != nil {
			t.Fatal(err)
		}
		s.Workers = workers
		rig, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		defer rig.Cluster.Close()
		if len(rig.Generators) != 5 {
			t.Fatalf("generators = %d, want 5", len(rig.Generators))
		}
		res := rig.Cluster.RunGenerators(rig.Generators, 20*time.Second)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		var sig []uint64
		for _, n := range rig.Cluster.Nodes {
			sig = append(sig,
				math.Float64bits(n.TrueDieC()),
				math.Float64bits(n.Sensor.Read()),
				math.Float64bits(n.Fan.Duty()),
				math.Float64bits(n.CPU.FreqGHz()),
				math.Float64bits(n.Meter.CPUEnergyJ()))
		}
		return sig
	}
	want := run(1)
	for _, workers := range []int{2, 5} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: observable %d diverged from serial", workers, i)
			}
		}
	}
}

func TestGroupedScenarioBuildsHeterogeneousFleet(t *testing.T) {
	s, err := ReadScenario(strings.NewReader(groupedScenario))
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 5 {
		t.Fatalf("derived nodes = %d, want 5", s.Nodes)
	}
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Cluster.Close()
	if len(rig.Groups) != 2 || rig.Groups[1].Name != "hot" || rig.Groups[1].First != 3 || rig.Groups[1].Count != 2 {
		t.Fatalf("groups = %+v", rig.Groups)
	}
	// Group hardware landed: the hot group's CPUs top out at 2.0 GHz,
	// the std group at the Athlon64 default 2.4.
	if f := rig.Cluster.Nodes[0].CPU.FreqGHz(); f != 2.4 {
		t.Errorf("std node top frequency = %v, want 2.4", f)
	}
	if f := rig.Cluster.Nodes[3].CPU.FreqGHz(); f != 2.0 {
		t.Errorf("hot node top frequency = %v, want 2.0", f)
	}
	// Node naming and seeding stay global across groups.
	if rig.Cluster.Nodes[3].Name != "node3" {
		t.Errorf("node 3 named %q", rig.Cluster.Nodes[3].Name)
	}
}

func TestGroupWorkloadOverridesScenarioWorkload(t *testing.T) {
	s, err := ReadScenario(strings.NewReader(groupedScenario))
	if err != nil {
		t.Fatal(err)
	}
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Cluster.Close()
	// The hot group's flash crowd starts at base 0.2 exactly; the std
	// group's exponential draw is random-valued.
	if u := rig.Generators[3].Utilization(0); u != 0.2 {
		t.Errorf("hot group generator at t=0 = %v, want the flash-crowd base 0.2", u)
	}
	if u0, u1 := rig.Generators[0].Utilization(0), rig.Generators[1].Utilization(0); u0 == u1 {
		t.Errorf("std nodes drew identical demand %v; per-node streams look shared", u0)
	}
}

func TestScenarioWorkloadProgramExclusive(t *testing.T) {
	in := `{"program": "bt", "workload": {"kind": "constant", "util": 0.5}, "control": {}}`
	if _, err := ReadScenario(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("program+workload accepted: %v", err)
	}
}

func TestScenarioGroupValidation(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"unnamed group", `{"groups": [{"nodes": 2}], "control": {}}`, "missing name"},
		{"duplicate group", `{"groups": [{"name": "a", "nodes": 1}, {"name": "a", "nodes": 1}], "control": {}}`, "declared twice"},
		{"empty group", `{"groups": [{"name": "a", "nodes": 0}], "control": {}}`, "at least one node"},
		{"nodes conflict", `{"nodes": 9, "groups": [{"name": "a", "nodes": 2}], "control": {}}`, "conflicts"},
		{"ascending freqs", `{"groups": [{"name": "a", "nodes": 1, "hardware": {"freqs_ghz": [1.0, 2.0]}}], "control": {}}`, "descending"},
		{"negative freq", `{"groups": [{"name": "a", "nodes": 1, "hardware": {"freqs_ghz": [-1]}}], "control": {}}`, "positive"},
		{"group workload with program", `{"program": "bt", "groups": [{"name": "a", "nodes": 1, "workload": {"kind": "constant"}}], "control": {}}`, "mutually exclusive"},
		{"bad group workload", `{"groups": [{"name": "a", "nodes": 1, "workload": {"kind": "warp"}}], "control": {}}`, "unknown"},
		{"bad workload", `{"workload": {"kind": "jitter"}, "control": {}}`, "period"},
	}
	for _, c := range cases {
		_, err := ReadScenario(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestUngroupedScenarioUnchanged(t *testing.T) {
	// A grouped scenario with default hardware builds the exact same
	// fleet as the equivalent flat one: grouping is bookkeeping, not
	// reseeding.
	flat, err := ReadScenario(strings.NewReader(`{"nodes": 4, "seed": 3, "control": {}}`))
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := ReadScenario(strings.NewReader(
		`{"seed": 3, "groups": [{"name": "a", "nodes": 1}, {"name": "b", "nodes": 3}], "control": {}}`))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := flat.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Cluster.Close()
	rg, err := grouped.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer rg.Cluster.Close()
	for i := 0; i < 40; i++ {
		rf.Cluster.Step()
		rg.Cluster.Step()
	}
	for i := range rf.Cluster.Nodes {
		a, b := rf.Cluster.Nodes[i].Sensor.Read(), rg.Cluster.Nodes[i].Sensor.Read()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("node %d diverged between flat and grouped default fleets: %v vs %v", i, a, b)
		}
	}
}

func TestRegroupingKeepsWorkloadStreams(t *testing.T) {
	// Node i's demand derives from the global node index, not its
	// group, so re-partitioning a fleet never reseeds its workload.
	one, err := ReadScenario(strings.NewReader(
		`{"seed": 5, "workload": {"kind": "random", "hold_ms": 1000}, "groups": [{"name": "a", "nodes": 4}], "control": {}}`))
	if err != nil {
		t.Fatal(err)
	}
	two, err := ReadScenario(strings.NewReader(
		`{"seed": 5, "workload": {"kind": "random", "hold_ms": 1000}, "groups": [{"name": "a", "nodes": 2}, {"name": "b", "nodes": 2}], "control": {}}`))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := one.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Cluster.Close()
	r2, err := two.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Cluster.Close()
	for i := 0; i < 4; i++ {
		for k := 0; k < 20; k++ {
			at := time.Duration(k) * time.Second
			if r1.Generators[i].Utilization(at) != r2.Generators[i].Utilization(at) {
				t.Fatalf("node %d demand changed under regrouping at %v", i, at)
			}
		}
	}
}

func TestExtendsComposition(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("base.json", `{
		"name": "base",
		"seed": 21,
		"workload": {"kind": "diurnal", "base": 0.5, "amplitude": 0.3, "period_ms": 240000},
		"groups": [{"name": "std", "nodes": 3}],
		"control": {"fan": "dynamic", "tuning": {"pp": 50, "max_fan_duty": 80}},
		"chaos": {"seed": 4, "horizon_ms": 30000}
	}`)
	write("derived.json", `{
		"extends": "base.json",
		"name": "derived",
		"workload": {"kind": "diurnal", "base": 0.6, "amplitude": 0.3, "period_ms": 240000},
		"control": {"tuning": {"pp": 25}},
		"chaos": null
	}`)
	s, err := LoadScenario(filepath.Join(dir, "derived.json"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "derived" || s.Seed != 21 {
		t.Errorf("name/seed = %s/%d, want derived/21 (seed inherited)", s.Name, s.Seed)
	}
	// Nested merge: pp overridden, sibling max_fan_duty inherited.
	if s.Control.Tuning.Pp != 25 {
		t.Errorf("pp = %v, want the override 25", s.Control.Tuning.Pp)
	}
	if s.Control.Tuning.MaxFanDuty != 80 {
		t.Errorf("max_fan_duty = %v, want the inherited 80", s.Control.Tuning.MaxFanDuty)
	}
	if s.Control.Fan != "dynamic" {
		t.Errorf("fan = %q, want inherited dynamic", s.Control.Fan)
	}
	// Scalar-within-object override replaces; null deletes.
	if s.Workload == nil || s.Workload.Base != 0.6 {
		t.Errorf("workload = %+v, want the override (base 0.6)", s.Workload)
	}
	if s.Chaos.Seed != 0 || s.Chaos.HorizonMS != 0 {
		t.Errorf("chaos = %+v, want deleted by null", s.Chaos)
	}
	if s.Nodes != 3 {
		t.Errorf("nodes = %d, want 3 from the inherited groups", s.Nodes)
	}
}

func TestExtendsChainAndErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.json", `{"nodes": 2, "seed": 1, "control": {}}`)
	write("b.json", `{"extends": "a.json", "seed": 2}`)
	write("c.json", `{"extends": "b.json", "name": "c"}`)
	s, err := LoadScenario(filepath.Join(dir, "c.json"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 2 || s.Seed != 2 || s.Name != "c" {
		t.Errorf("chain merged to %d/%d/%s, want 2/2/c", s.Nodes, s.Seed, s.Name)
	}

	write("loop1.json", `{"extends": "loop2.json"}`)
	write("loop2.json", `{"extends": "loop1.json"}`)
	if _, err := LoadScenario(filepath.Join(dir, "loop1.json")); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("extends cycle: %v", err)
	}

	write("escape.json", `{"extends": "../outside.json"}`)
	if _, err := LoadScenario(filepath.Join(dir, "escape.json")); err == nil || !strings.Contains(err.Error(), "relative path inside") {
		t.Errorf("path escape: %v", err)
	}

	write("missing.json", `{"extends": "nope.json"}`)
	if _, err := LoadScenario(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing base accepted")
	}

	// ReadScenario has no directory: extends is refused, flat documents
	// still parse.
	if _, err := ReadScenario(strings.NewReader(`{"extends": "a.json"}`)); err == nil || !strings.Contains(err.Error(), "directory") {
		t.Errorf("directoryless extends: %v", err)
	}
	if _, err := ReadScenario(strings.NewReader(`{"nodes": 2, "control": {}}`)); err != nil {
		t.Errorf("flat document through ReadScenario: %v", err)
	}

	// Unknown fields are still rejected after composition, and large
	// seeds survive the merge bit-exact.
	write("typo.json", `{"extends": "a.json", "nodez": 3}`)
	if _, err := LoadScenario(filepath.Join(dir, "typo.json")); err == nil {
		t.Error("unknown field survived composition")
	}
	write("bigseed.json", `{"nodes": 1, "seed": 18446744073709551615, "control": {}}`)
	write("bigseed_child.json", `{"extends": "bigseed.json"}`)
	s, err = LoadScenario(filepath.Join(dir, "bigseed_child.json"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 18446744073709551615 {
		t.Errorf("64-bit seed mangled by composition: %d", s.Seed)
	}
}

func TestWorkloadSeedFamilyDistinctFromNodeNoise(t *testing.T) {
	// The workload plane salts its seed family: a node's demand stream
	// must not be derived from the same value as its sensor noise.
	s, err := ReadScenario(strings.NewReader(
		`{"nodes": 2, "seed": 77, "workload": {"kind": "cpuburn"}, "control": {}}`))
	if err != nil {
		t.Fatal(err)
	}
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Cluster.Close()
	// Rebuild what an unsalted family would have produced for node 0
	// and check the actual generator differs.
	unsalted := workload.Spec{Kind: "cpuburn"}
	g, err := unsalted.Build(77, 0)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 50; i++ {
		at := time.Duration(i) * time.Second
		if g.Utilization(at) == rig.Generators[0].Utilization(at) {
			same++
		}
	}
	if same > 2 {
		t.Error("workload family seed equals the node noise family (missing salt)")
	}
}
