package config

// Scenario composition: a scenario file may name a base with
// "extends": "base.json" and override parts of it — the salsa-rex
// `create -c base derived` inheritance idiom (SNIPPETS.md), which keeps
// a gallery of examples DRY. Resolution happens on the raw JSON before
// the struct ever decodes: the chain of bases is read innermost-first
// and deep-merged child-over-base — nested objects merge key by key,
// arrays and scalars replace wholesale, and an explicit null deletes
// the inherited key. The merged document then takes the exact same
// strict decode (DisallowUnknownFields), Normalize and Validate path
// as a flat scenario, so an extended scenario is indistinguishable
// from its flattened form — it round-trips through re-marshaling with
// no trace of the chain.
//
// Base references resolve against the directory of the referring file
// (LoadScenario) or an explicitly configured scenario directory
// (ReadScenarioDir; the campaign server's -scenarios flag). They must
// be bare relative paths without ".." — a scenario is data, and data
// must not read files outside its own library. ReadScenario, which has
// no directory, refuses extends outright.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// maxExtendsDepth bounds an extends chain; deeper almost certainly
// means a generated or malicious document.
const maxExtendsDepth = 8

// ReadScenarioDir parses, composes, normalizes and validates a JSON
// scenario, resolving "extends" references against dir. An empty dir
// refuses extends (ReadScenario's behavior).
func ReadScenarioDir(r io.Reader, dir string) (Scenario, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return Scenario{}, fmt.Errorf("config: %w", err)
	}
	merged, err := resolveExtends(raw, dir, make(map[string]bool), 0)
	if err != nil {
		return Scenario{}, err
	}
	flat, err := json.Marshal(merged)
	if err != nil {
		return Scenario{}, fmt.Errorf("config: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(flat))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("config: %w", err)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// resolveExtends parses one raw scenario document and, when it extends
// a base, loads and resolves that base first, then merges this
// document's overrides on top. Numbers stay json.Number throughout so
// 64-bit seeds survive the round trip bit-exact.
func resolveExtends(raw []byte, dir string, seen map[string]bool, depth int) (map[string]any, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	ext, ok := m["extends"]
	if !ok {
		return m, nil
	}
	delete(m, "extends")
	name, ok := ext.(string)
	if !ok || name == "" {
		return nil, fmt.Errorf("config: extends must name a scenario file")
	}
	if dir == "" {
		return nil, fmt.Errorf("config: extends %q: no scenario directory in this context (load the scenario from a file, or point the server at a scenario library)", name)
	}
	if filepath.IsAbs(name) || strings.Contains(name, "..") {
		return nil, fmt.Errorf("config: extends %q: base must be a relative path inside the scenario directory", name)
	}
	if depth >= maxExtendsDepth {
		return nil, fmt.Errorf("config: extends chain deeper than %d at %q", maxExtendsDepth, name)
	}
	path := filepath.Clean(filepath.Join(dir, name))
	if seen[path] {
		return nil, fmt.Errorf("config: extends cycle through %q", path)
	}
	seen[path] = true
	baseRaw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: extends %q: %w", name, err)
	}
	base, err := resolveExtends(baseRaw, filepath.Dir(path), seen, depth+1)
	if err != nil {
		return nil, err
	}
	return mergeScenario(base, m), nil
}

// mergeScenario deep-merges override onto base, in place: nested
// objects merge recursively, everything else (arrays included)
// replaces wholesale, and an explicit JSON null deletes the inherited
// key — the only way to un-set a base's field, since omitting it
// inherits.
func mergeScenario(base, override map[string]any) map[string]any {
	keys := make([]string, 0, len(override))
	for k := range override {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := override[k]
		if v == nil {
			delete(base, k)
			continue
		}
		if vm, ok := v.(map[string]any); ok {
			if bm, ok := base[k].(map[string]any); ok {
				base[k] = mergeScenario(bm, vm)
				continue
			}
		}
		base[k] = v
	}
	return base
}
