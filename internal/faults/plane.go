package faults

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thermctl/internal/metrics"
)

// State is the folded fault condition of one target at one instant: the
// union of its active episodes. The zero State means "healthy". Booleans
// OR together, rates take the maximum, spike offsets sum, and the worst
// (smallest) degrade factor wins.
type State struct {
	SensorStuck   bool
	SensorDropout bool
	SensorSpikeC  float64
	I2CFaultRate  float64
	I2CNAKRate    float64
	IPMIDrop      bool
	IPMILatency   time.Duration
	FanStalled    bool
	FanDegrade    float64 // fraction of commanded speed reached; 0 means unimpaired
}

// merge folds one active episode into the state.
func (s State) merge(e Episode) State {
	switch e.Kind {
	case SensorStuck:
		s.SensorStuck = true
	case SensorDropout:
		s.SensorDropout = true
	case SensorSpike:
		s.SensorSpikeC += e.Param
	case I2CFault:
		if e.Rate > s.I2CFaultRate {
			s.I2CFaultRate = e.Rate
		}
	case I2CNAK:
		if e.Rate > s.I2CNAKRate {
			s.I2CNAKRate = e.Rate
		}
	case IPMITimeout:
		s.IPMIDrop = true
	case IPMILatency:
		if d := time.Duration(e.Param * float64(time.Millisecond)); d > s.IPMILatency {
			s.IPMILatency = d
		}
	case FanDegrade:
		if s.FanDegrade == 0 || e.Param < s.FanDegrade {
			s.FanDegrade = e.Param
		}
	case FanStall:
		s.FanStalled = true
	}
	return s
}

// Injector is the lock-free handle a device model polls for its current
// fault state. A nil or never-written Injector reads as healthy, so
// device code can hold one unconditionally.
type Injector struct {
	p atomic.Pointer[State]
}

// State returns the current fault state. Safe on a nil receiver.
func (i *Injector) State() State {
	if i == nil {
		return State{}
	}
	if s := i.p.Load(); s != nil {
		return *s
	}
	return State{}
}

// set publishes a new state. A healthy (zero) state is published as a
// nil pointer so the device-side State() poll — which runs on every
// simulation step for every instrumented device — stays a single atomic
// load plus branch, never dereferencing a cold heap allocation. This is
// what keeps the idle fault-plane overhead inside the benchmark bar.
func (i *Injector) set(s State) {
	if s == (State{}) {
		i.p.Store(nil)
		return
	}
	i.p.Store(&s)
}

// Static returns an injector pinned to a fixed state — the bridge for
// legacy knobs (i2c.SetFaultInjection) and for unit tests that want a
// fault "always on".
func Static(s State) *Injector {
	i := &Injector{}
	i.set(s)
	return i
}

// Event records one episode edge on the fault timeline.
type Event struct {
	At     time.Duration
	Target string
	Kind   Kind
	Active bool
}

// String renders the event in the fixed timeline format.
func (e Event) String() string {
	edge := "clear"
	if e.Active {
		edge = "begin"
	}
	return fmt.Sprintf("%s %s %s %s", e.At, e.Target, e.Kind, edge)
}

// Plane replays a Plan against a set of injectors. It implements the
// cluster's serial-phase Controller contract: OnStep(now) re-evaluates
// every schedule at simulation time now, publishes the folded State to
// each target's injector, and records episode begin/clear transitions.
// Register the plane before the control daemons so devices see the
// current fault state within the same control round.
type Plane struct {
	plan Plan

	mu     sync.Mutex
	inj    map[string]*Injector
	active map[string][]bool // per schedule target, per episode index
	events []Event
	// started/nextEdge implement the idle fast path: folded states can
	// only change at an episode edge (a Start or an End), so between
	// edges OnStep is a single comparison. This keeps the plane's cost
	// negligible when attached with nothing scheduled — the common case
	// the BenchmarkClusterStepFaults acceptance bar measures.
	started  bool
	nextEdge time.Duration

	activeG     *metrics.Gauge
	transitions *metrics.Counter
}

// NewPlane builds a plane for a validated plan.
func NewPlane(plan Plan) (*Plane, error) {
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	p := &Plane{
		plan:   plan,
		inj:    make(map[string]*Injector),
		active: make(map[string][]bool, len(plan.Schedules)),
	}
	for _, s := range plan.Schedules {
		p.inj[s.Target] = &Injector{}
		p.active[s.Target] = make([]bool, len(s.Episodes))
	}
	return p, nil
}

// Plan returns the plan the plane replays.
func (p *Plane) Plan() Plan { return p.plan }

// Injector returns the injector for a target, creating an always-healthy
// one if the plan has no schedule for it. Call at wiring time.
func (p *Plane) Injector(target string) *Injector {
	p.mu.Lock()
	defer p.mu.Unlock()
	inj, ok := p.inj[target]
	if !ok {
		inj = &Injector{}
		p.inj[target] = inj
	}
	return inj
}

// OnStep re-evaluates the plan at simulation time now. It runs in the
// serial controller phase, so the published states are identical for any
// worker count.
func (p *Plane) OnStep(now time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started && now < p.nextEdge {
		return
	}
	p.started = true
	nextEdge := time.Duration(math.MaxInt64)
	nActive := 0
	for _, sch := range p.plan.Schedules {
		st := State{}
		flags := p.active[sch.Target]
		for i, ep := range sch.Episodes {
			on := ep.active(now)
			if on {
				st = st.merge(ep)
				nActive++
			}
			if on != flags[i] {
				flags[i] = on
				//thermlint:allow hotalloc -- episode edges are rare scheduled transitions; the event log is the audit trail
				p.events = append(p.events, Event{
					At: now, Target: sch.Target, Kind: ep.Kind, Active: on,
				})
				p.transitions.Inc()
			}
			if start := time.Duration(ep.Start); now < start && start < nextEdge {
				nextEdge = start
			}
			if end := time.Duration(ep.Start) + time.Duration(ep.Duration); now < end && end < nextEdge {
				nextEdge = end
			}
		}
		p.inj[sch.Target].set(st)
	}
	p.nextEdge = nextEdge
	p.activeG.Set(float64(nActive))
}

// Events returns a copy of the recorded timeline.
func (p *Plane) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// Timeline renders the recorded events one per line — the byte-identical
// artifact the determinism tests compare across seeds and worker counts.
func (p *Plane) Timeline() string {
	events := p.Events()
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// InstrumentMetrics registers the plane's instruments on reg: a gauge of
// currently active episodes and a counter of episode transitions. Wiring
// time only.
func (p *Plane) InstrumentMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	activeG := reg.NewGauge("thermctl_faults_active_episodes",
		"fault episodes currently active across all targets", labels...)
	transitions := reg.NewCounter("thermctl_faults_transitions_total",
		"fault episode begin/clear transitions", labels...)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.activeG = activeG
	p.transitions = transitions
}
