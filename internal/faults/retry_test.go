package faults

import (
	"errors"
	"testing"
	"time"

	"thermctl/internal/metrics"
	"thermctl/internal/rng"
)

func TestRetrierSucceedsAfterFailures(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, rng.New(1), nil)
	calls := 0
	err := r.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("want 3 calls, got %d", calls)
	}
}

func TestRetrierGivesUpAndWrapsError(t *testing.T) {
	sentinel := errors.New("dead")
	r := NewRetrier(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}, rng.New(1), nil)
	calls := 0
	err := r.Do(func() error { calls++; return sentinel })
	if calls != 4 {
		t.Fatalf("want 4 calls, got %d", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error does not wrap the cause: %v", err)
	}
}

func TestRetrierBudgetBoundsBackoff(t *testing.T) {
	// 100 attempts allowed but a budget that only covers the first
	// backoff: the second delay (2*BaseDelay jittered down by at most
	// half) would exceed it.
	pol := RetryPolicy{
		MaxAttempts: 100,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    time.Second,
		Budget:      12 * time.Millisecond,
	}
	r := NewRetrier(pol, nil, nil)
	calls := 0
	err := r.Do(func() error { calls++; return errors.New("dead") })
	if err == nil {
		t.Fatal("budget never exhausted")
	}
	if calls != 2 {
		t.Fatalf("want 2 calls (10ms then budget blown), got %d", calls)
	}
}

func TestRetrierJitterDeterministic(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 100 * time.Millisecond, JitterFrac: 0.5}
	collect := func() []time.Duration {
		r := NewRetrier(pol, rng.New(42), func(time.Duration) {})
		var ds []time.Duration
		for a := 1; a < 5; a++ {
			ds = append(ds, r.delay(a))
		}
		return ds
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
		base := pol.BaseDelay << uint(i)
		if base > pol.MaxDelay {
			base = pol.MaxDelay
		}
		if a[i] > base || a[i] < time.Duration(float64(base)*(1-pol.JitterFrac)) {
			t.Fatalf("delay %d out of jitter range: %v (base %v)", i, a[i], base)
		}
	}
}

func TestRetrierSleepsBetweenAttempts(t *testing.T) {
	var slept []time.Duration
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		nil, func(d time.Duration) { slept = append(slept, d) })
	_ = r.Do(func() error { return errors.New("dead") })
	if len(slept) != 2 {
		t.Fatalf("want 2 sleeps, got %v", slept)
	}
	if slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("unjittered exponential backoff wrong: %v", slept)
	}
}

func TestRetrierMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRetrier(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}, rng.New(3), nil)
	r.InstrumentMetrics(reg)
	_ = r.Do(func() error { return errors.New("dead") })
	if err := r.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := r.attempts.Value(); got != 3 {
		t.Fatalf("attempts=%d want 3", got)
	}
	if got := r.retries.Value(); got != 1 {
		t.Fatalf("retries=%d want 1", got)
	}
	if got := r.giveups.Value(); got != 1 {
		t.Fatalf("giveups=%d want 1", got)
	}
}
