package faults

import (
	"fmt"
	"sync"
	"time"

	"thermctl/internal/metrics"
	"thermctl/internal/rng"
)

// RetryPolicy bounds a retry loop: at most MaxAttempts tries, exponential
// backoff from BaseDelay capped at MaxDelay, multiplied by a jitter factor
// drawn from [1-JitterFrac, 1], with the summed backoff never exceeding
// Budget (the per-call deadline).
type RetryPolicy struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
	JitterFrac  float64
	Budget      time.Duration
}

// DefaultRetryPolicy is the policy used for actuator and transport
// wrappers: three attempts, 10 ms base doubling to at most 500 ms, half-
// range jitter, 2 s total budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		JitterFrac:  0.5,
		Budget:      2 * time.Second,
	}
}

// Retrier runs operations under a RetryPolicy with a deterministic jitter
// stream. The sleep function is injectable: pass nil in simulation (the
// control loop must never wait on the wall clock — backoff is then only
// accounted against the budget), or time.Sleep in a live daemon.
type Retrier struct {
	pol   RetryPolicy
	sleep func(time.Duration)

	mu  sync.Mutex
	src *rng.Source

	attempts *metrics.Counter
	retries  *metrics.Counter
	giveups  *metrics.Counter
}

// NewRetrier builds a retrier. src seeds the jitter stream and must not
// be shared with other consumers; sleep may be nil (no waiting).
func NewRetrier(pol RetryPolicy, src *rng.Source, sleep func(time.Duration)) *Retrier {
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = 1
	}
	return &Retrier{pol: pol, sleep: sleep, src: src}
}

// Do runs op until it succeeds, the attempt cap is hit, or the backoff
// budget is exhausted. The returned error wraps op's last error.
//
// Do allocates a closure per call; hot-path wrappers (RetryActuator and
// friends) drive Begin/Next directly instead.
func (r *Retrier) Do(op func() error) error {
	var err error
	for a := r.Begin(); a.Next(&err); {
		err = op()
	}
	return err
}

// Attempt is the state of one closure-free retry loop, driven by the
// caller:
//
//	var err error
//	for a := r.Begin(); a.Next(&err); {
//		err = port.SetKHz(f)
//	}
//	return err
//
// The zero-allocation shape matters on the actuation path: a Do closure
// capturing the argument would allocate per call in Step-reachable code
// (hotalloc).
type Attempt struct {
	r       *Retrier
	attempt int
	waited  time.Duration
}

// Begin starts a retry loop under the retrier's policy.
func (r *Retrier) Begin() Attempt { return Attempt{r: r} }

// Next reports whether the caller should run (another) attempt. errp
// points at the previous attempt's error (ignored before the first).
// When Next returns false, *errp holds the final outcome: nil on
// success, or the last error wrapped with the give-up cause.
func (a *Attempt) Next(errp *error) bool {
	r := a.r
	if a.attempt == 0 {
		a.attempt = 1
		r.attempts.Inc()
		return true
	}
	if *errp == nil {
		return false
	}
	if a.attempt >= r.pol.MaxAttempts {
		r.giveups.Inc()
		//thermlint:allow hotalloc -- give-up wrap: once per exhausted retry sequence, not per round
		*errp = fmt.Errorf("faults: gave up after %d attempts: %w", a.attempt, *errp)
		return false
	}
	d := r.delay(a.attempt)
	if r.pol.Budget > 0 && a.waited+d > r.pol.Budget {
		r.giveups.Inc()
		//thermlint:allow hotalloc -- budget-exhausted wrap: once per failed sequence, not per round
		*errp = fmt.Errorf("faults: retry budget %s exhausted after %d attempts: %w",
			r.pol.Budget, a.attempt, *errp)
		return false
	}
	a.waited += d
	r.retries.Inc()
	if r.sleep != nil {
		r.sleep(d)
	}
	a.attempt++
	r.attempts.Inc()
	return true
}

// delay computes the jittered backoff before attempt+1.
func (r *Retrier) delay(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 30 {
		shift = 30
	}
	d := r.pol.BaseDelay << uint(shift)
	if r.pol.MaxDelay > 0 && d > r.pol.MaxDelay {
		d = r.pol.MaxDelay
	}
	if r.pol.JitterFrac > 0 && r.src != nil {
		r.mu.Lock()
		f := 1 - r.pol.JitterFrac*r.src.Float64()
		r.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// InstrumentMetrics registers attempt/retry/giveup counters on reg.
// Wiring time only.
func (r *Retrier) InstrumentMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	attempts := reg.NewCounter("thermctl_retry_attempts_total",
		"operation attempts made under a retry policy", labels...)
	retries := reg.NewCounter("thermctl_retry_backoffs_total",
		"retries after a failed attempt", labels...)
	giveups := reg.NewCounter("thermctl_retry_giveups_total",
		"operations abandoned after exhausting attempts or budget", labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attempts = attempts
	r.retries = retries
	r.giveups = giveups
}
