// Package faults is the deterministic fault-injection plane.
//
// The paper's premise is that thermal control must keep working when the
// physical world misbehaves: sensors stick or drop out, SMBus transactions
// NAK, the BMC stops answering, fan bearings degrade. This package gives
// every device model a single, seeded source of truth for "is something
// wrong right now": typed fault Episodes grouped into per-target Schedules,
// replayable bit-for-bit from a seed (Generate) or a JSON file (LoadPlan).
//
// The plane is split in two halves so that fault evaluation never perturbs
// the simulation's random streams or its parallel stepping contract:
//
//   - Plane (plane.go) runs in the serial controller phase of the cluster
//     loop. Each OnStep it folds the active episodes of every schedule into
//     a compact State and publishes it.
//   - Injector (plane.go) is the lock-free handle a device model polls from
//     its own (possibly parallel) step. It is nil-safe: an unattached or
//     nil injector always reads as "no faults".
//
// Devices draw any probabilistic decisions (NAK this transaction?) from
// their own rng stream, so the fault timeline itself is byte-identical for
// any worker count.
package faults

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"time"

	"thermctl/internal/rng"
)

// Kind identifies a fault mechanism. The set mirrors the failure modes the
// device models can express.
type Kind string

const (
	// SensorStuck freezes the sensor at its last good reading; reads keep
	// succeeding but never change.
	SensorStuck Kind = "sensor-stuck"
	// SensorDropout makes checked sensor reads fail outright (the hwmon
	// file returns EIO, the BMC sensor is absent).
	SensorDropout Kind = "sensor-dropout"
	// SensorSpike adds Param degrees C to every reading.
	SensorSpike Kind = "sensor-spike"
	// I2CFault makes each bus transaction fail with a generic bus error
	// with probability Rate.
	I2CFault Kind = "i2c-fault"
	// I2CNAK makes each bus transaction NAK with probability Rate,
	// modelling a device that intermittently stops acknowledging.
	I2CNAK Kind = "i2c-nak"
	// IPMITimeout makes the BMC transport drop requests (the caller times
	// out).
	IPMITimeout Kind = "ipmi-timeout"
	// IPMILatency adds Param milliseconds of latency to each BMC request.
	IPMILatency Kind = "ipmi-latency"
	// FanDegrade models bearing wear: the fan only reaches Param (a
	// fraction in (0,1]) of its commanded speed.
	FanDegrade Kind = "fan-degrade"
	// FanStall seizes the rotor regardless of commanded duty.
	FanStall Kind = "fan-stall"
)

// kinds lists every valid Kind in the order Generate draws from.
var kinds = [...]Kind{
	SensorStuck, SensorDropout, SensorSpike,
	I2CFault, I2CNAK,
	IPMITimeout, IPMILatency,
	FanDegrade, FanStall,
}

// Valid reports whether k is a known fault kind.
func (k Kind) Valid() bool {
	for _, v := range kinds {
		if k == v {
			return true
		}
	}
	return false
}

// needsRate reports whether the kind is probabilistic (Rate required).
func (k Kind) needsRate() bool { return k == I2CFault || k == I2CNAK }

// needsParam reports whether the kind carries a magnitude in Param.
func (k Kind) needsParam() bool {
	return k == SensorSpike || k == IPMILatency || k == FanDegrade
}

// Dur is a time.Duration that marshals to JSON as a human-readable string
// ("30s", "1m15s") and unmarshals from either that form or a bare number
// of seconds.
type Dur time.Duration

// MarshalJSON renders the duration as a quoted time.Duration string.
func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "30s"-style strings or plain numbers of seconds.
func (d *Dur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faults: bad duration %q: %w", s, err)
		}
		*d = Dur(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("faults: duration must be a string or seconds: %s", b)
	}
	if math.IsNaN(secs) || math.IsInf(secs, 0) {
		return fmt.Errorf("faults: non-finite duration %v", secs)
	}
	*d = Dur(secs * float64(time.Second))
	return nil
}

// String renders the duration in time.Duration notation.
func (d Dur) String() string { return time.Duration(d).String() }

// Episode is one scheduled fault window: Kind is active on its target from
// Start (inclusive) to Start+Duration (exclusive) in simulation time.
type Episode struct {
	Kind     Kind    `json:"kind"`
	Start    Dur     `json:"start"`
	Duration Dur     `json:"for"`
	Param    float64 `json:"param,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
}

// active reports whether the episode covers simulation time now.
func (e Episode) active(now time.Duration) bool {
	start := time.Duration(e.Start)
	return now >= start && now < start+time.Duration(e.Duration)
}

// Validate checks the episode for structural errors.
func (e Episode) Validate() error {
	if !e.Kind.Valid() {
		return fmt.Errorf("unknown fault kind %q", e.Kind)
	}
	if e.Start < 0 {
		return fmt.Errorf("%s: negative start %s", e.Kind, e.Start)
	}
	if e.Duration <= 0 {
		return fmt.Errorf("%s: non-positive duration %s", e.Kind, e.Duration)
	}
	if math.IsNaN(e.Param) || math.IsInf(e.Param, 0) {
		return fmt.Errorf("%s: non-finite param", e.Kind)
	}
	if math.IsNaN(e.Rate) || e.Rate < 0 || e.Rate > 1 {
		return fmt.Errorf("%s: rate %v outside [0,1]", e.Kind, e.Rate)
	}
	if e.Kind.needsRate() && e.Rate == 0 {
		return fmt.Errorf("%s: rate required", e.Kind)
	}
	if e.Kind == FanDegrade && (e.Param <= 0 || e.Param > 1) {
		return fmt.Errorf("fan-degrade: param %v outside (0,1]", e.Param)
	}
	if e.Kind == IPMILatency && e.Param < 0 {
		return fmt.Errorf("ipmi-latency: negative param %v", e.Param)
	}
	return nil
}

// Schedule is the ordered list of episodes aimed at one target. Targets
// are free-form names agreed between the plan author and the wiring code;
// the cluster uses its node names ("node0", "node1", ...).
type Schedule struct {
	Target   string    `json:"target"`
	Episodes []Episode `json:"episodes"`
}

// Plan is a named set of schedules — one complete fault campaign.
type Plan struct {
	Name      string     `json:"name"`
	Schedules []Schedule `json:"schedules"`
}

// Validate checks the whole plan: every episode well-formed, no duplicate
// or empty targets.
func (p Plan) Validate() error {
	seen := make(map[string]bool, len(p.Schedules))
	for i, s := range p.Schedules {
		if s.Target == "" {
			return fmt.Errorf("schedule %d: empty target", i)
		}
		if seen[s.Target] {
			return fmt.Errorf("duplicate target %q", s.Target)
		}
		seen[s.Target] = true
		for j, e := range s.Episodes {
			if err := e.Validate(); err != nil {
				return fmt.Errorf("target %q episode %d: %w", s.Target, j, err)
			}
		}
	}
	return nil
}

// ParsePlan decodes and validates a JSON fault plan.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, fmt.Errorf("faults: invalid plan: %w", err)
	}
	return p, nil
}

// LoadPlan reads and parses a fault plan from a JSON file.
func LoadPlan(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("faults: %w", err)
	}
	return ParsePlan(data)
}

// genQuantum is the grain Generate aligns episode boundaries to — the
// controller sample period, so generated campaigns exercise whole samples.
const genQuantum = 250 * time.Millisecond

// Generate builds a deterministic fault campaign for the given targets
// over a total window: same seed and arguments, byte-identical plan. Each
// target gets its own rng stream (rng.Mix of the seed and the target
// index), one to three episodes with kind, placement, magnitude and rate
// drawn from that stream, and boundaries quantized to the 250 ms control
// sample grain.
func Generate(seed uint64, targets []string, total time.Duration) Plan {
	p := Plan{Name: "generated-" + strconv.FormatUint(seed, 10)}
	for i, tgt := range targets {
		src := rng.New(rng.Mix(seed, uint64(i)))
		n := 1 + src.Intn(3)
		sch := Schedule{Target: tgt}
		for e := 0; e < n; e++ {
			ep := Episode{Kind: kinds[src.Intn(len(kinds))]}
			start := time.Duration(src.Float64() * 0.6 * float64(total))
			dur := time.Duration((0.05 + 0.15*src.Float64()) * float64(total))
			ep.Start = Dur(quantize(start))
			ep.Duration = Dur(quantize(dur))
			switch ep.Kind {
			case SensorSpike:
				ep.Param = 8 + 8*src.Float64()
			case IPMILatency:
				ep.Param = 5 + 45*src.Float64()
			case FanDegrade:
				ep.Param = 0.2 + 0.5*src.Float64()
			}
			if ep.Kind.needsRate() {
				ep.Rate = 0.1 + 0.4*src.Float64()
			}
			sch.Episodes = append(sch.Episodes, ep)
		}
		p.Schedules = append(p.Schedules, sch)
	}
	return p
}

// quantize aligns d to the generation grain, never below one quantum.
func quantize(d time.Duration) time.Duration {
	q := d.Round(genQuantum)
	if q < genQuantum {
		q = genQuantum
	}
	return q
}
