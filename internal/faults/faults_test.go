package faults

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParsePlanRoundTrip(t *testing.T) {
	src := `{
		"name": "campaign",
		"schedules": [
			{"target": "node0", "episodes": [
				{"kind": "sensor-dropout", "start": "20s", "for": "30s"},
				{"kind": "i2c-nak", "start": "5s", "for": "2.5s", "rate": 0.3},
				{"kind": "sensor-spike", "start": 60, "for": 2, "param": 15}
			]},
			{"target": "node1", "episodes": [
				{"kind": "fan-degrade", "start": "0s", "for": "10s", "param": 0.5}
			]}
		]
	}`
	p, err := ParsePlan([]byte(src))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Name != "campaign" || len(p.Schedules) != 2 {
		t.Fatalf("unexpected plan shape: %+v", p)
	}
	ep := p.Schedules[0].Episodes[2]
	if time.Duration(ep.Start) != 60*time.Second || time.Duration(ep.Duration) != 2*time.Second {
		t.Fatalf("numeric durations misparsed: %+v", ep)
	}

	// Marshal and reparse: identical plan.
	out, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	p2, err := ParsePlan(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	out2, err := json.Marshal(p2)
	if err != nil {
		t.Fatalf("remarshal: %v", err)
	}
	if !bytes.Equal(out, out2) {
		t.Fatalf("round trip not stable:\n%s\n%s", out, out2)
	}
}

func TestParsePlanRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"unknown kind":  `{"schedules":[{"target":"a","episodes":[{"kind":"nope","start":"0s","for":"1s"}]}]}`,
		"zero duration": `{"schedules":[{"target":"a","episodes":[{"kind":"fan-stall","start":"0s","for":"0s"}]}]}`,
		"neg start":     `{"schedules":[{"target":"a","episodes":[{"kind":"fan-stall","start":"-1s","for":"1s"}]}]}`,
		"rate > 1":      `{"schedules":[{"target":"a","episodes":[{"kind":"i2c-nak","start":"0s","for":"1s","rate":1.5}]}]}`,
		"rate missing":  `{"schedules":[{"target":"a","episodes":[{"kind":"i2c-fault","start":"0s","for":"1s"}]}]}`,
		"bad degrade":   `{"schedules":[{"target":"a","episodes":[{"kind":"fan-degrade","start":"0s","for":"1s","param":1.5}]}]}`,
		"empty target":  `{"schedules":[{"target":"","episodes":[]}]}`,
		"dup target":    `{"schedules":[{"target":"a","episodes":[]},{"target":"a","episodes":[]}]}`,
		"bad json":      `{"schedules":`,
	}
	for name, src := range cases {
		if _, err := ParsePlan([]byte(src)); err == nil {
			t.Errorf("%s: ParsePlan accepted invalid plan", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	targets := []string{"node0", "node1", "node2", "node3"}
	a := Generate(20100131, targets, time.Minute)
	b := Generate(20100131, targets, time.Minute)
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed produced different plans:\n%s\n%s", ja, jb)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	if len(a.Schedules) != len(targets) {
		t.Fatalf("want %d schedules, got %d", len(targets), len(a.Schedules))
	}
	c := Generate(7, targets, time.Minute)
	jc, _ := json.Marshal(c)
	if bytes.Equal(ja, jc) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlaneTimelineAndStates(t *testing.T) {
	plan := Plan{
		Name: "t",
		Schedules: []Schedule{{
			Target: "node0",
			Episodes: []Episode{
				{Kind: SensorDropout, Start: Dur(1 * time.Second), Duration: Dur(2 * time.Second)},
				{Kind: SensorSpike, Start: Dur(2 * time.Second), Duration: Dur(2 * time.Second), Param: 5},
				{Kind: SensorSpike, Start: Dur(3 * time.Second), Duration: Dur(1 * time.Second), Param: 3},
				{Kind: FanStall, Start: Dur(10 * time.Second), Duration: Dur(1 * time.Second)},
			},
		}},
	}
	p, err := NewPlane(plan)
	if err != nil {
		t.Fatal(err)
	}
	inj := p.Injector("node0")
	if s := inj.State(); s != (State{}) {
		t.Fatalf("initial state not healthy: %+v", s)
	}

	for ms := 0; ms <= 11000; ms += 250 {
		p.OnStep(time.Duration(ms) * time.Millisecond)
	}
	// At the final step only nothing is active.
	if s := inj.State(); s != (State{}) {
		t.Fatalf("final state not healthy: %+v", s)
	}

	want := strings.Join([]string{
		"1s node0 sensor-dropout begin",
		"2s node0 sensor-spike begin",
		"3s node0 sensor-dropout clear",
		"3s node0 sensor-spike begin",
		"4s node0 sensor-spike clear",
		"4s node0 sensor-spike clear",
		"10s node0 fan-stall begin",
		"11s node0 fan-stall clear",
	}, "\n") + "\n"
	if got := p.Timeline(); got != want {
		t.Fatalf("timeline mismatch:\ngot:\n%swant:\n%s", got, want)
	}

	// Spike windows overlapped at t=3.5s: offsets must sum.
	p2, _ := NewPlane(plan)
	inj2 := p2.Injector("node0")
	p2.OnStep(3500 * time.Millisecond)
	if s := inj2.State(); s.SensorSpikeC != 8 || s.SensorDropout {
		t.Fatalf("overlap fold wrong: %+v", s)
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var inj *Injector
	if s := inj.State(); s != (State{}) {
		t.Fatalf("nil injector not healthy: %+v", s)
	}
	st := Static(State{I2CFaultRate: 0.2, FanStalled: true})
	if s := st.State(); s.I2CFaultRate != 0.2 || !s.FanStalled {
		t.Fatalf("static injector wrong: %+v", s)
	}
}

func TestPlaneUnknownTargetHealthy(t *testing.T) {
	p, err := NewPlane(Plan{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	inj := p.Injector("ghost")
	p.OnStep(0)
	if s := inj.State(); s != (State{}) {
		t.Fatalf("unscheduled target not healthy: %+v", s)
	}
}

func FuzzParsePlan(f *testing.F) {
	f.Add([]byte(`{"name":"x","schedules":[{"target":"a","episodes":[{"kind":"sensor-stuck","start":"1s","for":"2s"}]}]}`))
	f.Add([]byte(`{"schedules":[{"target":"a","episodes":[{"kind":"i2c-nak","start":0,"for":1,"rate":0.5}]}]}`))
	f.Add([]byte(`{"schedules":[{"target":"a","episodes":[{"kind":"ipmi-latency","start":"0s","for":"1s","param":20}]}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"schedules":[{"target":"a","episodes":[{"kind":"fan-degrade","start":"0s","for":"1s","param":1e309}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return
		}
		// An accepted plan must validate, drive a plane, and survive a
		// marshal/reparse round trip.
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted plan fails Validate: %v", err)
		}
		pl, err := NewPlane(p)
		if err != nil {
			t.Fatalf("accepted plan rejected by NewPlane: %v", err)
		}
		pl.OnStep(0)
		pl.OnStep(time.Second)
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted plan fails marshal: %v", err)
		}
		if _, err := ParsePlan(out); err != nil {
			t.Fatalf("marshal of accepted plan rejected: %v\n%s", err, out)
		}
	})
}
