package cpufreq

import (
	"strings"
	"testing"
	"time"

	"thermctl/internal/cpu"
	"thermctl/internal/hwmon"
)

func newScaler() (*cpu.CPU, *SimScaler) {
	c := cpu.New(cpu.DefaultConfig())
	return c, NewSimScaler(c)
}

func TestAvailableMatchesTable(t *testing.T) {
	_, s := newScaler()
	got := s.AvailableKHz()
	want := []int64{2400000, 2200000, 2000000, 1800000, 1000000}
	if len(got) != len(want) {
		t.Fatalf("AvailableKHz = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("freq[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSetKHz(t *testing.T) {
	c, s := newScaler()
	if err := s.SetKHz(1800000); err != nil {
		t.Fatal(err)
	}
	if c.FreqGHz() != 1.8 {
		t.Errorf("CPU at %v GHz, want 1.8", c.FreqGHz())
	}
	if s.CurrentKHz() != 1800000 {
		t.Errorf("CurrentKHz = %d", s.CurrentKHz())
	}
	if err := s.SetKHz(1234); err == nil {
		t.Error("SetKHz accepted a frequency not in the table")
	}
	if s.Transitions() != 1 {
		t.Errorf("Transitions = %d, want 1", s.Transitions())
	}
}

func TestMountSysfsLayout(t *testing.T) {
	_, s := newScaler()
	fs := hwmon.NewFS()
	p := Mount(fs, 0, s)

	body, err := fs.ReadFile(p.AvailableFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "2400000") || !strings.Contains(body, "1000000") {
		t.Errorf("scaling_available_frequencies = %q", body)
	}

	cur, err := fs.ReadInt(p.CurFreq)
	if err != nil || cur != 2400000 {
		t.Errorf("scaling_cur_freq = %d, %v", cur, err)
	}

	if err := fs.WriteInt(p.SetSpeed, 2000000); err != nil {
		t.Fatal(err)
	}
	cur, _ = fs.ReadInt(p.CurFreq)
	if cur != 2000000 {
		t.Errorf("after setspeed, cur = %d", cur)
	}

	trans, err := fs.ReadInt(p.TotalTransitions)
	if err != nil || trans != 1 {
		t.Errorf("stats/total_trans = %d, %v", trans, err)
	}
}

func TestMountRejectsBadSetspeed(t *testing.T) {
	_, s := newScaler()
	fs := hwmon.NewFS()
	p := Mount(fs, 0, s)
	if err := fs.WriteInt(p.SetSpeed, 99); err == nil {
		t.Error("setspeed accepted an invalid frequency")
	}
}

func TestGovernorFile(t *testing.T) {
	_, s := newScaler()
	fs := hwmon.NewFS()
	p := Mount(fs, 0, s)
	g, err := fs.ReadFile(p.Governor)
	if err != nil || strings.TrimSpace(g) != "userspace" {
		t.Errorf("governor = %q, %v", g, err)
	}
	if err := fs.WriteFile(p.Governor, "ondemand\n"); err != nil {
		t.Fatal(err)
	}
	g, _ = fs.ReadFile(p.Governor)
	if strings.TrimSpace(g) != "ondemand" {
		t.Errorf("governor after write = %q", g)
	}
	if err := fs.WriteFile(p.Governor, "performance"); err == nil {
		t.Error("unsupported governor accepted")
	}
}

func TestParseAvailable(t *testing.T) {
	got, err := ParseAvailable("1000000 2400000 1800000\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2400000, 1800000, 1000000}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ParseAvailable[%d] = %d, want %d (descending)", i, got[i], want[i])
		}
	}
	if _, err := ParseAvailable("24x"); err == nil {
		t.Error("ParseAvailable accepted garbage")
	}
}

func TestMultipleCPUsSeparatePolicies(t *testing.T) {
	fs := hwmon.NewFS()
	c0, s0 := newScaler()
	c1, s1 := newScaler()
	p0 := Mount(fs, 0, s0)
	p1 := Mount(fs, 1, s1)
	_ = fs.WriteInt(p0.SetSpeed, 1000000)
	if c0.FreqGHz() != 1.0 {
		t.Error("cpu0 did not scale")
	}
	if c1.FreqGHz() != 2.4 {
		t.Error("cpu1 scaled when only cpu0 was written")
	}
	_ = fs.WriteInt(p1.SetSpeed, 1800000)
	if c1.FreqGHz() != 1.8 {
		t.Error("cpu1 did not scale")
	}
}

func TestTimeInStateResidency(t *testing.T) {
	c, s := newScaler()
	fs := hwmon.NewFS()
	p := Mount(fs, 0, s)
	// 3 s at 2.4 GHz, then 1 s at 1.8 GHz.
	for i := 0; i < 12; i++ {
		s.Account(250 * time.Millisecond)
	}
	if !c.SetFreqGHz(1.8) {
		t.Fatal("no 1.8 GHz state")
	}
	for i := 0; i < 4; i++ {
		s.Account(250 * time.Millisecond)
	}
	tis := s.TimeInState()
	if tis[2400000] != 300 { // 3 s = 300 ten-ms ticks
		t.Errorf("residency at 2.4 GHz = %d ticks, want 300", tis[2400000])
	}
	if tis[1800000] != 100 {
		t.Errorf("residency at 1.8 GHz = %d ticks, want 100", tis[1800000])
	}
	body, err := fs.ReadFile(p.TimeInState)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "2400000 300") || !strings.Contains(body, "1800000 100") {
		t.Errorf("time_in_state:\n%s", body)
	}
	// Untouched frequencies appear with zero residency.
	if !strings.Contains(body, "1000000 0") {
		t.Errorf("zero-residency state missing:\n%s", body)
	}
}
