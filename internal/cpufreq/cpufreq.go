// Package cpufreq is the in-band DVFS interface: the simulated
// equivalent of the Linux cpufreq subsystem the paper's tDVFS and
// CPUSPEED daemons drive.
//
// A Scaler abstracts "a thing whose frequency can be set"; SimScaler
// implements it over the simulated CPU. Mount lays out the familiar
// sysfs attribute files (scaling_available_frequencies,
// scaling_cur_freq, scaling_setspeed under the userspace governor,
// stats/total_trans) so daemons can also operate purely through the
// virtual /sys tree.
package cpufreq

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"thermctl/internal/cpu"
	"thermctl/internal/hwmon"
)

// Scaler is a frequency-scalable processor.
type Scaler interface {
	// AvailableKHz returns the supported frequencies in kHz, in
	// descending order (cpufreq convention for these parts).
	AvailableKHz() []int64
	// CurrentKHz returns the operating frequency in kHz.
	CurrentKHz() int64
	// SetKHz requests the exact frequency f. It returns an error if f
	// is not in the available table.
	SetKHz(f int64) error
	// Transitions returns the cumulative frequency-change count, as
	// cpufreq's stats/total_trans reports.
	Transitions() uint64
}

// SimScaler implements Scaler over the simulated CPU, and additionally
// tracks per-frequency residency for the stats/time_in_state file.
type SimScaler struct {
	c         *cpu.CPU
	residency map[int64]time.Duration
}

// NewSimScaler wraps c.
func NewSimScaler(c *cpu.CPU) *SimScaler {
	return &SimScaler{c: c, residency: make(map[int64]time.Duration)}
}

// Account credits dt of residency to the current frequency. The node
// calls it once per simulation step.
func (s *SimScaler) Account(dt time.Duration) {
	s.residency[s.CurrentKHz()] += dt
}

// TimeInState returns the per-frequency residency, in cpufreq's unit of
// 10 ms ticks, keyed by kHz.
func (s *SimScaler) TimeInState() map[int64]int64 {
	out := make(map[int64]int64, len(s.residency))
	for khz, d := range s.residency {
		out[khz] = int64(d / (10 * time.Millisecond))
	}
	return out
}

// AvailableKHz implements Scaler.
//
//thermlint:unit kHz
func (s *SimScaler) AvailableKHz() []int64 {
	tab := s.c.Table()
	out := make([]int64, len(tab))
	for i, p := range tab {
		out[i] = ghzToKHz(p.FreqGHz)
	}
	return out
}

// CurrentKHz implements Scaler.
//
//thermlint:unit kHz
func (s *SimScaler) CurrentKHz() int64 { return ghzToKHz(s.c.FreqGHz()) }

// SetKHz implements Scaler.
//
//thermlint:unit f=kHz
func (s *SimScaler) SetKHz(f int64) error {
	for i, p := range s.c.Table() {
		if ghzToKHz(p.FreqGHz) == f {
			s.c.SetPState(i)
			return nil
		}
	}
	return fmt.Errorf("cpufreq: frequency %d kHz not in table", f)
}

// Transitions implements Scaler.
func (s *SimScaler) Transitions() uint64 { return s.c.Transitions() }

// ghzToKHz converts a model frequency to cpufreq's sysfs unit.
//
//thermlint:unit g=GHz
//thermlint:unit kHz
func ghzToKHz(g float64) int64 { return int64(g*1e6 + 0.5) }

// Paths bundles the sysfs attribute paths of one CPU's cpufreq policy.
type Paths struct {
	Dir              string
	AvailableFreqs   string
	CurFreq          string
	SetSpeed         string
	Governor         string
	TotalTransitions string
	TimeInState      string
}

// Mount lays out the cpufreq policy directory for cpu<idx> on the
// virtual sysfs, bound to the given Scaler. The governor file accepts
// only "userspace" (the governor the paper's daemons require) and
// "ondemand"; scaling_setspeed writes are honored regardless, as our
// daemons own the policy.
func Mount(fs *hwmon.FS, idx int, s Scaler) Paths {
	dir := fmt.Sprintf("/sys/devices/system/cpu/cpu%d/cpufreq", idx)
	p := Paths{
		Dir:              dir,
		AvailableFreqs:   dir + "/scaling_available_frequencies",
		CurFreq:          dir + "/scaling_cur_freq",
		SetSpeed:         dir + "/scaling_setspeed",
		Governor:         dir + "/scaling_governor",
		TotalTransitions: dir + "/stats/total_trans",
		TimeInState:      dir + "/stats/time_in_state",
	}
	fs.Register(p.AvailableFreqs, hwmon.FuncFile{
		ReadFn: func() (string, error) {
			freqs := s.AvailableKHz()
			parts := make([]string, len(freqs))
			for i, f := range freqs {
				parts[i] = strconv.FormatInt(f, 10)
			}
			return strings.Join(parts, " ") + "\n", nil
		},
	})
	fs.Register(p.CurFreq, hwmon.IntFile{Get: s.CurrentKHz})
	fs.Register(p.SetSpeed, hwmon.IntFile{
		Get: s.CurrentKHz,
		Set: func(v int64) error { return s.SetKHz(v) },
	})
	governor := "userspace"
	fs.Register(p.Governor, hwmon.FuncFile{
		ReadFn: func() (string, error) { return governor + "\n", nil },
		WriteFn: func(v string) error {
			v = strings.TrimSpace(v)
			if v != "userspace" && v != "ondemand" {
				return fmt.Errorf("%w: governor %q", hwmon.ErrInvalid, v)
			}
			governor = v
			return nil
		},
	})
	fs.Register(p.TotalTransitions, hwmon.IntFile{
		Get: func() int64 { return int64(s.Transitions()) },
	})
	// stats/time_in_state: "<kHz> <ticks>" per line, descending
	// frequency, when the scaler tracks residency.
	if sim, ok := s.(*SimScaler); ok {
		fs.Register(p.TimeInState, hwmon.FuncFile{
			ReadFn: func() (string, error) {
				var sb strings.Builder
				tis := sim.TimeInState()
				for _, khz := range sim.AvailableKHz() {
					fmt.Fprintf(&sb, "%d %d\n", khz, tis[khz])
				}
				return sb.String(), nil
			},
		})
	}
	return p
}

// ParseAvailable parses a scaling_available_frequencies file body. The
// frequency table of a CPU is static, so hot callers cache the result
// (see core.SysfsFreqPort.AvailableKHz) and this parse runs once per
// port, not per round.
//
//thermlint:unit kHz
func ParseAvailable(body string) ([]int64, error) {
	//thermlint:allow hotalloc -- one-shot parse; hot callers cache the table
	fields := strings.Fields(body)
	//thermlint:allow hotalloc -- one-shot parse; hot callers cache the table
	out := make([]int64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cpufreq: bad frequency %q", f)
		}
		//thermlint:allow hotalloc -- capacity preallocated to the field count above; never grows
		out = append(out, v)
	}
	//thermlint:allow hotalloc -- one-shot parse; hot callers cache the table
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out, nil
}
