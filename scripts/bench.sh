#!/usr/bin/env bash
# bench.sh runs the cluster scale benchmark suite and refreshes
# BENCH_cluster.json, the repository's performance trajectory file.
#
# Usage:
#
#	./scripts/bench.sh            # full run (default -benchtime)
#	BENCHTIME=1x ./scripts/bench.sh   # one iteration per benchmark (CI smoke)
#	OUT=/dev/stdout ./scripts/bench.sh
#
# The suite is BenchmarkClusterStep / BenchmarkEngineStep /
# BenchmarkClusterStepMetrics / BenchmarkClusterStepFaults /
# BenchmarkClusterStepRack / BenchmarkClusterRunProgram in
# internal/cluster: 4/64/256 nodes crossed with 1/4/GOMAXPROCS workers.
# Parallel stepping is byte-identical to serial, so the sweep measures
# wall-clock only; the JSON's "speedups" section reports
# serial-over-parallel per (benchmark, nodes) group, the
# StepMetrics-vs-Step delta at a given shape is the overhead of full
# metrics instrumentation, and the StepFaults-vs-Step delta is the idle
# cost of the fault-plane hooks (bar: within 5%). The EngineStep-vs-Step
# delta is the whole cost of full hybrid control through the engine
# pipeline (~4% at the large serial shapes in the committed trajectory;
# see the benchmark's doc comment) and is gated below via
# `benchjson -within` at 25% to leave shared-machine noise headroom.
#
# pipefail matters here: `go test | tee` must fail the script when the
# benchmark run fails, not when tee does.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_cluster.json}"
WITHIN="${WITHIN:-25}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# -count repeats every benchmark; benchjson keeps the fastest run of
# each (best-of-N), which is what makes the recorded overhead deltas
# resolvable on a noisy shared machine.
echo "==> go test -bench cluster suite -benchtime $BENCHTIME -count $COUNT ./internal/cluster" >&2
go test -run '^$' -bench 'Benchmark(Cluster(Step|StepMetrics|StepFaults|StepRack|RunProgram)|EngineStep)$' \
	-benchtime "$BENCHTIME" -count "$COUNT" ./internal/cluster | tee "$tmp" >&2

go run ./cmd/benchjson <"$tmp" >"$OUT"
echo "==> wrote $OUT" >&2

echo "==> benchjson -within ClusterStep EngineStep -tolerance $WITHIN $OUT" >&2
go run ./cmd/benchjson -within ClusterStep EngineStep -tolerance "$WITHIN" "$OUT"
