#!/usr/bin/env bash
# bench.sh runs the cluster scale benchmark suite and refreshes
# BENCH_cluster.json, the repository's performance trajectory file.
#
# Usage:
#
#	./scripts/bench.sh            # full run (default -benchtime)
#	BENCHTIME=1x ./scripts/bench.sh   # one iteration per benchmark (CI smoke)
#	OUT=/dev/stdout ./scripts/bench.sh
#	FLEET=1 ./scripts/bench.sh    # extend ClusterStep to 1k/10k/100k nodes
#
# The suite is BenchmarkClusterStep / BenchmarkEngineStep /
# BenchmarkClusterStepMetrics / BenchmarkClusterStepFaults /
# BenchmarkClusterStepRack / BenchmarkClusterStepTrace /
# BenchmarkClusterStepWorkload / BenchmarkClusterRunProgram in
# internal/cluster: 4/64/256 nodes crossed with 1/4/GOMAXPROCS workers;
# with FLEET=1 the ClusterStep matrix extends to 1k/10k/100k nodes
# (make bench sets it — fleet shapes cost seconds of setup each, so the
# CI smoke run keeps the small matrix).
# Parallel stepping is byte-identical to serial, so the sweep measures
# wall-clock only; the JSON's "speedups" section reports
# serial-over-parallel per (benchmark, nodes) group, the
# StepMetrics-vs-Step delta at a given shape is the overhead of full
# metrics instrumentation, and the StepFaults-vs-Step delta is the idle
# cost of the fault-plane hooks (bar: within 5%). The EngineStep-vs-Step
# delta is the whole cost of full hybrid control through the engine
# pipeline (~4% at the large serial shapes in the committed trajectory;
# see the benchmark's doc comment) and is gated below via
# `benchjson -within` at 25% to leave shared-machine noise headroom.
# The StepTrace-vs-Step delta is the cost of streaming the binary
# trace (internal/tracefile) on the step path, gated hard at 5% —
# Writer.Append is allocation-free and amortized over the 1 s sampling
# cadence, so tracing a campaign must stay effectively free.
#
# pipefail matters here: `go test | tee` must fail the script when the
# benchmark run fails, not when tee does.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
# 5 epochs: run-to-run drift on a shared host is ±10%, and the tight
# trace gate needs the best-of-N min converged to the quiet-host number.
COUNT="${COUNT:-5}"
OUT="${OUT:-BENCH_cluster.json}"
WITHIN="${WITHIN:-25}"
# The parallel-beats-serial gate: speedup_vs_serial must not fall below
# 1 - PSLACK% at or above PMINNODES nodes. 10% slack absorbs run-to-run
# noise at smoke benchtimes (the committed trajectory is gated tighter
# in CI, see .github/workflows/ci.yml).
PMINNODES="${PMINNODES:-64}"
PSLACK="${PSLACK:-10}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

if [ -n "${FLEET:-}" ]; then
	export THERMCTL_BENCH_FLEET=1
fi

# COUNT epochs of the whole suite rather than go test -count=N:
# benchjson keeps the fastest run of each benchmark (best-of-N) either
# way, but -count repeats a benchmark consecutively, so minutes-scale
# host noise (a shared box's slow spell) lands on all N repeats of
# whichever benchmark is running and survives the min. Sweeping the
# whole suite per epoch spreads each benchmark's repeats across the
# run — the min then converges on quiet-host numbers for every
# benchmark, which is what makes cross-benchmark overhead deltas
# (the -within gates below) resolvable. Fresh process per epoch also
# resets heap growth between repeats.
echo "==> go test -bench cluster suite -benchtime $BENCHTIME x$COUNT epochs ./internal/cluster" >&2
for _ in $(seq "$COUNT"); do
	go test -run '^$' -bench 'Benchmark(Cluster(Step|StepMetrics|StepFaults|StepRack|StepTrace|StepWorkload|RunProgram)|EngineStep)$' \
		-benchtime "$BENCHTIME" -count 1 ./internal/cluster
done | tee "$tmp" >&2

go run ./cmd/benchjson <"$tmp" >"$OUT"
echo "==> wrote $OUT" >&2

echo "==> benchjson -within ClusterStep EngineStep -tolerance $WITHIN $OUT" >&2
go run ./cmd/benchjson -within ClusterStep EngineStep -tolerance "$WITHIN" "$OUT"

# Trace recording must ride the step path essentially for free: 5%,
# not the noise-padded engine tolerance (TRACEWITHIN to loosen locally).
TRACEWITHIN="${TRACEWITHIN:-5}"
echo "==> benchjson -within ClusterStep ClusterStepTrace -tolerance $TRACEWITHIN $OUT" >&2
go run ./cmd/benchjson -within ClusterStep ClusterStepTrace -tolerance "$TRACEWITHIN" "$OUT"

# Per-node seeded generator evaluation rides the sharded step path;
# the declarative workload plane must stay a ~few-percent overhead on
# the bare step (the committed trajectory reads ~5% with the uniform
# random shape), gated at 10% (WORKLOADWITHIN to loosen locally).
WORKLOADWITHIN="${WORKLOADWITHIN:-10}"
echo "==> benchjson -within ClusterStep ClusterStepWorkload -tolerance $WORKLOADWITHIN $OUT" >&2
go run ./cmd/benchjson -within ClusterStep ClusterStepWorkload -tolerance "$WORKLOADWITHIN" "$OUT"

echo "==> benchjson -parallel ClusterStep -min-nodes $PMINNODES -slack $PSLACK $OUT" >&2
go run ./cmd/benchjson -parallel ClusterStep -min-nodes "$PMINNODES" -slack "$PSLACK" "$OUT"
