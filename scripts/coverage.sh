#!/usr/bin/env bash
# coverage.sh runs the full test suite with statement coverage and
# enforces the repository's total-coverage floor. The profile is left
# in $PROFILE (default coverage.out) so CI can upload it as an
# artifact and developers can open it with `go tool cover -html`.
#
# Usage:
#
#	./scripts/coverage.sh                 # enforce the default floor
#	FLOOR=0 ./scripts/coverage.sh         # measure only
#	PROFILE=/tmp/c.out ./scripts/coverage.sh
#
# The floor is the measured total at the time the gate was introduced,
# rounded down — it only ratchets up, by editing FLOOR below once new
# tests land.
set -euo pipefail

cd "$(dirname "$0")/.."

FLOOR="${FLOOR:-75}"
PROFILE="${PROFILE:-coverage.out}"

echo "==> go test -coverprofile $PROFILE ./..." >&2
go test -coverprofile "$PROFILE" ./... >&2

total="$(go tool cover -func "$PROFILE" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')"
if [ -z "$total" ]; then
	echo "coverage.sh: could not extract total from $PROFILE" >&2
	exit 1
fi
echo "==> total statement coverage: ${total}% (floor ${FLOOR}%)"
awk -v t="$total" -v f="$FLOOR" 'BEGIN { exit !(t >= f) }' || {
	echo "coverage.sh: total coverage ${total}% fell below the ${FLOOR}% floor" >&2
	exit 1
}
