#!/bin/sh
# lintannotate.sh runs thermlint and surfaces its findings as GitHub
# Actions error annotations, so each finding appears inline on the
# pull-request diff at its file and line.
#
# Under GitHub Actions (GITHUB_ACTIONS=true) it consumes thermlint's
# -json NDJSON stream and re-emits each finding as
#
#	::error file=F,line=L,col=C::analyzer: message
#
# Anywhere else it falls through to plain thermlint output. Extra
# arguments are passed to thermlint as package patterns (default
# ./...). Exit status is thermlint's: 1 when there are findings.
set -u

cd "$(dirname "$0")/.."

[ $# -eq 0 ] && set -- ./...

if [ "${GITHUB_ACTIONS:-}" != "true" ]; then
	exec go run ./cmd/thermlint "$@"
fi

status=0
out="$(go run ./cmd/thermlint -json "$@")" || status=$?

if [ -n "$out" ]; then
	printf '%s\n' "$out" | awk '
	{
		file = ""; lineno = ""; col = ""; analyzer = ""
		if (match($0, /"file":"[^"]*"/))      file     = substr($0, RSTART + 8,  RLENGTH - 9)
		if (match($0, /"line":[0-9]+/))       lineno   = substr($0, RSTART + 7,  RLENGTH - 7)
		if (match($0, /"col":[0-9]+/))        col      = substr($0, RSTART + 6,  RLENGTH - 6)
		if (match($0, /"analyzer":"[^"]*"/))  analyzer = substr($0, RSTART + 12, RLENGTH - 13)
		# The message is the tail of the object: strip everything up to
		# its opening quote, then the closing quote and trailing fields.
		msg = $0
		sub(/^.*"message":"/, "", msg)
		if (!sub(/","fixable":(true|false)\}$/, "", msg)) sub(/"\}$/, "", msg)
		gsub(/\\"/, "\"", msg)
		gsub(/\\\\/, "\\", msg)
		# GitHub annotation escaping.
		gsub(/%/, "%25", msg)
		printf "::error file=%s,line=%s,col=%s::%s: %s\n", file, lineno, col, analyzer, msg
	}'
fi

exit "$status"
