#!/bin/sh
# check.sh runs the repository's full verification gate — the same
# steps CI runs (.github/workflows/ci.yml), in the same order, so a
# clean local run means a clean CI run.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> thermlint ./..."
# Plain output locally; inline ::error annotations under GitHub Actions.
./scripts/lintannotate.sh ./...

if command -v shellcheck >/dev/null 2>&1; then
	echo "==> shellcheck scripts/*.sh"
	shellcheck scripts/*.sh
else
	echo "==> shellcheck not installed; skipping script lint"
fi

echo "==> go test -race ./..."
go test -race ./...

echo "==> scenario gallery (examples/*.json load + build, extends chains included)"
go test ./internal/config -run 'TestScenarioGallery|TestGalleryExtendsChains' -count=1

echo "==> chaos smoke (experiments -only chaos)"
go run ./cmd/experiments -only chaos >/dev/null

echo "==> campaign server smoke (scripts/serversmoke.sh)"
TRACE="$(mktemp -u).tct" ./scripts/serversmoke.sh >/dev/null

echo "OK"
