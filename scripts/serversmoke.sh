#!/bin/sh
# serversmoke.sh boots the campaign server and drives one campaign
# through the public API end to end: submit the committed example
# scenario with thermq, wait for it to finish, pull both artifacts,
# validate the .tct with thermtrace, and check the /metrics ledger.
# A clean exit means the service path — REST admission, worker pool,
# trace/report artifact store, instrumentation, graceful shutdown —
# works outside the Go test harness.
#
# The downloaded trace is left at $TRACE (default server-smoke.tct)
# so CI can upload it as an artifact.
set -eu

cd "$(dirname "$0")/.."

PORT="${PORT:-9631}"
ADDR="http://127.0.0.1:$PORT"
TRACE="${TRACE:-server-smoke.tct}"
DATA="$(mktemp -d)"

echo "==> build thermsrv, thermq, thermtrace"
mkdir -p "$DATA/bin"
go build -o "$DATA/bin/" ./cmd/thermsrv ./cmd/thermq ./cmd/thermtrace

echo "==> boot thermsrv on $ADDR"
"$DATA/bin/thermsrv" -listen "127.0.0.1:$PORT" -dir "$DATA/jobs" &
SRV=$!
cleanup() {
	kill -INT "$SRV" 2>/dev/null || true
	wait "$SRV" 2>/dev/null || true
	rm -rf "$DATA"
}
trap cleanup EXIT INT TERM

i=0
until curl -fsS "$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "thermsrv never became healthy on $ADDR" >&2
		exit 1
	fi
	sleep 0.1
done

echo "==> submit examples/cluster-sleep.json and wait for terminal state"
out="$("$DATA/bin/thermq" submit -addr "$ADDR" -wait examples/cluster-sleep.json)"
echo "$out"
id="$(echo "$out" | awk 'NR == 1 { print $1 }')"
case "$out" in
*done*) ;;
*)
	echo "job $id did not reach done" >&2
	exit 1
	;;
esac

echo "==> report artifact carries the campaign summary"
"$DATA/bin/thermq" report -addr "$ADDR" "$id" | grep -q '"cluster_avg_w"'

echo "==> trace artifact is a valid .tct ($TRACE)"
"$DATA/bin/thermq" trace -addr "$ADDR" "$id" "$TRACE" >/dev/null
"$DATA/bin/thermtrace" info "$TRACE"

echo "==> /metrics reflect the campaign"
metrics="$(curl -fsS "$ADDR/metrics")"
for want in \
	'thermsrv_jobs_submitted_total 1' \
	'thermsrv_jobs_finished_total{state="done"} 1' \
	'thermsrv_jobs_running 0' \
	'thermsrv_queue_depth 0'; do
	if ! printf '%s\n' "$metrics" | grep -Fxq "$want"; then
		echo "missing metrics line: $want" >&2
		printf '%s\n' "$metrics" | grep '^thermsrv' >&2 || true
		exit 1
	fi
done

echo "OK"
