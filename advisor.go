package thermctl

import (
	"fmt"
	"time"

	"thermctl/internal/node"
)

// RecommendPp searches the policy range for the most cost-efficient
// (largest) Pp whose steady-state die temperature under the given
// workload stays at or below targetC, by running short deterministic
// calibration simulations. It is the operator-facing answer to the
// paper's observation that "an optimal Pp highly depends on application
// characteristics and system thermal properties": instead of guessing,
// measure on the model.
//
// The search assumes steady temperature is non-increasing as the policy
// gets more aggressive (smaller Pp), which holds for fan-dominated
// plants; the simulation budget is ~7 runs of calibration duration.
//
// It returns the chosen Pp and whether even that policy met the target
// (when false, the returned Pp is PpMin — the plant cannot reach targetC
// with this fan alone).
func RecommendPp(cfg NodeConfig, gen Generator, maxDuty, targetC float64) (pp int, meets bool, err error) {
	steady, err := calibrateSteady(cfg, gen, maxDuty)
	if err != nil {
		return 0, false, err
	}
	// Binary search the largest Pp with steady(pp) <= targetC.
	lo, hi := PpMin, PpMax // invariant target: lo meets (to verify), hi may not
	tLo, err := steady(lo)
	if err != nil {
		return 0, false, err
	}
	if tLo > targetC {
		return PpMin, false, nil
	}
	tHi, err := steady(hi)
	if err != nil {
		return 0, false, err
	}
	if tHi <= targetC {
		return PpMax, true, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		tMid, err := steady(mid)
		if err != nil {
			return 0, false, err
		}
		if tMid <= targetC {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true, nil
}

// calibrateSteady returns a probe function measuring the steady die
// temperature at one policy value.
func calibrateSteady(cfg NodeConfig, gen Generator, maxDuty float64) (func(pp int) (float64, error), error) {
	if gen == nil {
		return nil, fmt.Errorf("thermctl: RecommendPp needs a workload generator")
	}
	const (
		runTime = 6 * time.Minute
		dt      = 250 * time.Millisecond
	)
	return func(pp int) (float64, error) {
		probeCfg := cfg
		probeCfg.Name = fmt.Sprintf("%s-probe-pp%d", cfg.Name, pp)
		n, err := node.New(probeCfg)
		if err != nil {
			return 0, err
		}
		n.Settle(0)
		ctl, err := NewDynamicFanControl(n, pp, maxDuty)
		if err != nil {
			return 0, err
		}
		n.SetGenerator(gen)
		var sum float64
		var count int
		for n.Elapsed() < runTime {
			n.Step(dt)
			ctl.OnStep(n.Elapsed())
			if n.Elapsed() > runTime*2/3 {
				sum += n.TrueDieC()
				count++
			}
		}
		return sum / float64(count), nil
	}, nil
}
