// Package thermctl is a system-level, unified in-band and out-of-band
// dynamic thermal control framework — a from-scratch reproduction of
// Li, Ge and Cameron, "System-level, Unified In-band and Out-of-band
// Dynamic Thermal Control" (ICPP 2010) — together with the complete
// simulated cluster substrate its evaluation requires.
//
// # What it provides
//
//   - A deterministic simulated server node: DVFS-capable CPU (Athlon64
//     4000+ P-states), RC thermal network, PWM fan behind an ADT7467
//     fan controller on an i2c bus, lm-sensors-grade thermal sensor,
//     a virtual sysfs exposing hwmon and cpufreq attribute files
//     (the in-band path), and an IPMI-style BMC (the out-of-band path).
//   - A barrier-synchronized cluster executing NPB-like SPMD programs,
//     so DVFS decisions become measurable execution time.
//   - The paper's contribution: the two-level temperature history
//     window, the Pp-driven thermal control array, a unified controller
//     over any set of actuators, the tDVFS daemon, and the Hybrid
//     coordinator that couples the fan and DVFS knobs under one policy.
//   - The paper's baselines: traditional static fan control, constant
//     fan speed, and the CPUSPEED utilization governor.
//   - An experiment harness regenerating every figure and table of the
//     paper's evaluation (run `go test -bench .` or cmd/experiments).
//
// # Quickstart
//
//	n, _ := thermctl.NewNode("n0", 1)
//	ctl, _ := thermctl.NewDynamicFanControl(n, 50, 100) // Pp=50, full fan
//	n.SetGenerator(thermctl.CPUBurn(2))
//	for i := 0; i < 1200; i++ { // five simulated minutes
//		n.Step(250 * time.Millisecond)
//		ctl.OnStep(n.Elapsed())
//	}
//	fmt.Printf("die %.1f °C at %.0f%% duty\n", n.TrueDieC(), n.Fan.Duty())
//
// The controllers act only through the node's virtual sysfs files and
// BMC commands, never on simulator internals, so porting them to a real
// Linux host is a matter of pointing the ports at /sys and /dev/ipmi0.
package thermctl

import (
	"thermctl/internal/baseline"
	"thermctl/internal/cluster"
	"thermctl/internal/config"
	"thermctl/internal/core"
	"thermctl/internal/core/ctlarray"
	"thermctl/internal/core/window"
	"thermctl/internal/cstates"
	"thermctl/internal/experiment"
	"thermctl/internal/node"
	"thermctl/internal/rng"
	"thermctl/internal/workload"
)

// Version identifies the library release.
const Version = "1.0.0"

// Re-exported core types. The concrete implementations live in internal
// packages; these aliases are the supported public surface.
type (
	// Node is one simulated server: CPU, fan, thermal network, sensors,
	// ADT7467, virtual sysfs, BMC and power meter.
	Node = node.Node
	// NodeConfig configures a Node.
	NodeConfig = node.Config
	// Cluster is a set of nodes stepped in lock-step, able to run
	// barrier-synchronized SPMD programs.
	Cluster = cluster.Cluster
	// RunResult summarizes one program execution on a cluster.
	RunResult = cluster.RunResult
	// Controller is the paper's unified dynamic thermal controller.
	Controller = core.Controller
	// ControllerConfig parameterizes a Controller.
	ControllerConfig = core.Config
	// TDVFS is the temperature-aware DVFS daemon of the paper's §4.3.
	TDVFS = core.TDVFS
	// TDVFSConfig parameterizes a TDVFS daemon.
	TDVFSConfig = core.TDVFSConfig
	// Hybrid couples a fan Controller and a TDVFS daemon under one
	// policy with explicit coordination (§4.4).
	Hybrid = core.Hybrid
	// Window is the two-level temperature history (§3.2.1).
	Window = window.Window
	// WindowConfig sizes a Window.
	WindowConfig = window.Config
	// ControlArray is the thermal control array (§3.2.2).
	ControlArray = ctlarray.Array
	// Actuator is one thermal control technique unified under the
	// control array.
	Actuator = core.Actuator
	// Engine steps an ordered set of control bindings; every controller
	// in this module is a policy bound into one of these.
	Engine = core.Engine
	// Binding is one engine lane: sample → window → policy → actuators,
	// with fault retry, fail-safe escalation and metrics handled once.
	Binding = core.Binding
	// BindingConfig wires a Binding.
	BindingConfig = core.BindingConfig
	// ControlPolicy is the decision law a Binding runs each control
	// round (the paper's array walk, the tDVFS thresholds, ...).
	ControlPolicy = core.Policy
	// Txn is the actuation transaction a policy decides through; every
	// apply funnels into shared error accounting.
	Txn = core.Txn
	// CtlArrayPolicy is the thermal-control-array decision law (§3.2.2)
	// as a reusable policy.
	CtlArrayPolicy = core.CtlArrayPolicy
	// ThresholdPolicy is the tDVFS threshold/trend decision law (§4.3)
	// as a reusable policy.
	ThresholdPolicy = core.ThresholdPolicy
	// Scenario is the declarative deployment description consumed by
	// thermctld, clustersim and the experiment harness alike.
	Scenario = config.Scenario
	// Rig is a built Scenario: cluster, controllers, faults, metrics.
	Rig = config.Rig
	// Program is a closed-loop SPMD application.
	Program = workload.Program
	// Generator is an open-loop utilization source.
	Generator = workload.Generator
	// StaticFan is the traditional static fan controller baseline.
	StaticFan = baseline.StaticFan
	// CPUSpeed is the CPUSPEED utilization-governor baseline.
	CPUSpeed = baseline.CPUSpeed
)

// Policy bounds for the Pp parameter, from the paper.
const (
	PpMin = ctlarray.PpMin
	PpMax = ctlarray.PpMax
)

// NewNode builds a simulated server with the paper's platform defaults
// (Athlon64 4000+, 4300 RPM fan, calibrated RC thermal network),
// deterministically seeded.
func NewNode(name string, seed uint64) (*Node, error) {
	return node.New(node.DefaultConfig(name, seed))
}

// NewNodeWithConfig builds a node from an explicit configuration.
func NewNodeWithConfig(cfg NodeConfig) (*Node, error) { return node.New(cfg) }

// DefaultNodeConfig returns the paper-platform node configuration.
func DefaultNodeConfig(name string, seed uint64) NodeConfig {
	return node.DefaultConfig(name, seed)
}

// NewCluster builds an n-node cluster stepping at the standard
// experiment resolution.
func NewCluster(n int, seed uint64) (*Cluster, error) {
	return cluster.New(n, cluster.DefaultDt, seed)
}

// NewDynamicFanControl attaches the paper's history-based dynamic fan
// controller to a node: policy pp in [1,100], fan duty capped at
// maxDuty percent. Drive it by calling OnStep after each node Step.
func NewDynamicFanControl(n *Node, pp int, maxDuty float64) (*Controller, error) {
	return core.NewController(
		core.DefaultConfig(pp),
		core.SysfsTemp(n.FS, n.Hwmon.TempInput),
		core.ActuatorBinding{Actuator: core.NewFanActuator(
			&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, maxDuty)},
	)
}

// NewTDVFS attaches the temperature-aware DVFS daemon to a node with
// the paper's parameters (51 °C threshold) at policy pp.
func NewTDVFS(n *Node, pp int) (*TDVFS, error) {
	act, err := core.NewDVFSActuator(&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		return nil, err
	}
	return core.NewTDVFS(core.DefaultTDVFSConfig(pp),
		core.SysfsTemp(n.FS, n.Hwmon.TempInput), act)
}

// NewUnified attaches the full unified controller to a node: dynamic
// fan control and tDVFS coordinated under one policy pp, fan capped at
// maxDuty percent.
func NewUnified(n *Node, pp int, maxDuty float64) (*Hybrid, error) {
	fan, err := NewDynamicFanControl(n, pp, maxDuty)
	if err != nil {
		return nil, err
	}
	dvfs, err := NewTDVFS(n, pp)
	if err != nil {
		return nil, err
	}
	return core.NewHybrid(fan, dvfs), nil
}

// NewSleepStateControl attaches a thermal control array driving the
// node's ACPI processor sleep states (C0..C3) — the same decision law
// as the fan controller, walking the C-state table instead of duty
// steps. It demonstrates the array is technique-agnostic: any actuator
// with ordered modes plugs in.
func NewSleepStateControl(n *Node, pp int) (*Controller, error) {
	return core.NewController(
		core.DefaultConfig(pp),
		core.SysfsTemp(n.FS, n.Hwmon.TempInput),
		core.ActuatorBinding{Actuator: cstates.NewActuator(n.FS, n.CStates)},
	)
}

// LoadScenario reads, normalizes and validates a JSON scenario file.
func LoadScenario(path string) (Scenario, error) { return config.LoadScenario(path) }

// NewStaticFanControl attaches the traditional static fan controller
// (the paper's Figure 1 baseline) with the given duty cap.
func NewStaticFanControl(n *Node, maxDuty float64) (*StaticFan, error) {
	return baseline.NewStaticFan(
		baseline.DefaultStaticFanConfig(maxDuty),
		core.SysfsTemp(n.FS, n.Hwmon.TempInput),
		&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon},
	)
}

// NewCPUSpeed attaches the CPUSPEED utilization governor baseline.
func NewCPUSpeed(n *Node) (*CPUSpeed, error) {
	return baseline.NewCPUSpeed(baseline.DefaultCPUSpeedConfig(), n.FS,
		&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
}

// CPUBurn returns the cpu-burn stressor workload (sustained full load
// with scheduling noise) seeded deterministically.
func CPUBurn(seed uint64) Generator {
	return workload.NewCPUBurn(rng.New(seed))
}

// BTB4 returns the NPB BT class-B 4-process program model (≈219 s at
// 2.4 GHz on four nodes).
func BTB4() Program { return workload.BTB4() }

// LUB4 returns the NPB LU class-B 4-process program model.
func LUB4() Program { return workload.LUB4() }

// ExperimentSeed is the fixed seed the paper-reproduction experiments
// run under.
const ExperimentSeed = experiment.Seed
