# Verification targets mirror .github/workflows/ci.yml.

.PHONY: all build test race lint check bench coverage

all: check

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# lint runs the static gates only (no tests): vet, gofmt, thermlint
# (with inline GitHub annotations when run under Actions).
lint:
	go vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	./scripts/lintannotate.sh ./...

# check is the full CI gate.
check:
	./scripts/check.sh

# bench refreshes BENCH_cluster.json from the cluster scale benchmark
# suite (BENCHTIME=1x for a smoke run). FLEET=1 extends ClusterStep to
# the 1k/10k/100k-node fleet matrix recorded in the committed
# trajectory.
bench:
	FLEET=1 ./scripts/bench.sh

# coverage measures total statement coverage and enforces the floor
# (FLOOR=0 to measure only). Leaves coverage.out for `go tool cover`.
coverage:
	./scripts/coverage.sh
