package thermctl

// The benchmark harness regenerates every table and figure of the
// paper's evaluation and reports the headline observables as benchmark
// metrics, so `go test -bench . -benchmem` reproduces the whole
// evaluation in one command. One benchmark per table/figure, plus
// ablation benches for the design choices DESIGN.md calls out.
//
// Absolute values are the simulated platform's; the shapes (who wins,
// by roughly what factor, where crossovers fall) track the paper. See
// EXPERIMENTS.md for the side-by-side.

import (
	"testing"
	"time"

	"thermctl/internal/baseline"
	"thermctl/internal/core"
	"thermctl/internal/core/ctlarray"
	"thermctl/internal/core/window"
	"thermctl/internal/experiment"
	"thermctl/internal/node"
	"thermctl/internal/workload"
)

// BenchmarkFig2ThermalTypes regenerates Figure 2: the thermal-behaviour
// profile and its classification into sudden / gradual / jitter.
func BenchmarkFig2ThermalTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig2(experiment.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.SuddenInOnset), "sudden-rounds")
			b.ReportMetric(float64(r.JitterInJitter), "jitter-rounds")
			b.ReportMetric(float64(r.GradualInRamp), "gradual-rounds")
			b.ReportMetric(float64(r.FalseSuddenInJitter), "false-sudden")
		}
	}
}

// BenchmarkFig5FanPp regenerates Figure 5: dynamic fan control under
// cpu-burn at Pp ∈ {75, 50, 25}. Paper: average duty 36/53/70 and
// monotonically lower temperature with smaller Pp.
func BenchmarkFig5FanPp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig5(experiment.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pp := range []int{75, 50, 25} {
				row := r.Row(pp)
				b.ReportMetric(row.AvgDuty, "duty-pp"+itoa(pp))
				b.ReportMetric(row.AvgTempC, "degC-pp"+itoa(pp))
			}
		}
	}
}

// BenchmarkFig6FanMethods regenerates Figure 6: dynamic vs traditional
// static vs constant fan control on BT.B.4. Paper: dynamic proactively
// exceeds 45% duty (static: 32%), stabilizes sooner and lower;
// constant-75% is coldest but costliest.
func BenchmarkFig6FanMethods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig6(experiment.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, m := range []experiment.FanMethod{experiment.FanDynamic, experiment.FanStatic, experiment.FanConstant} {
				row := r.Row(m)
				b.ReportMetric(row.SteadyC, "degC-"+m.String())
				b.ReportMetric(row.PeakDuty, "peakduty-"+m.String())
				b.ReportMetric(row.StabilizeS, "settle-s-"+m.String())
			}
		}
	}
}

// BenchmarkFig7MaxPWM regenerates Figure 7: the maximum-duty sweep.
// Paper: ≈8 °C between 25% and 100% caps; 50% ≈ 75%.
func BenchmarkFig7MaxPWM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig7(experiment.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, cap := range []float64{25, 50, 75, 100} {
				b.ReportMetric(r.Row(cap).SteadyC, "degC-cap"+itoa(int(cap)))
			}
			b.ReportMetric(r.Spread(25, 100), "spread-25v100")
			b.ReportMetric(r.Spread(50, 75), "spread-50v75")
		}
	}
}

// BenchmarkFig8TDVFS regenerates Figure 8: tDVFS coupled with the
// traditional static fan on LU. Paper: scales down only when the
// average temperature is consistently above 51 °C, restores afterwards,
// ignores short spikes.
func BenchmarkFig8TDVFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig8(experiment.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Downscales), "downscales")
			b.ReportMetric(float64(r.Upscales), "restores")
			b.ReportMetric(r.MinFreqGHz, "min-GHz")
			b.ReportMetric(r.EndFreqGHz, "end-GHz")
			b.ReportMetric(r.ExecS, "exec-s")
		}
	}
}

// BenchmarkFig9TDVFSvsCPUSPEED regenerates Figure 9: under a weak fan,
// CPUSPEED lets the temperature keep rising while tDVFS stabilizes it.
func BenchmarkFig9TDVFSvsCPUSPEED(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig9(experiment.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, d := range []string{"tDVFS", "CPUSPEED"} {
				row := r.Row(d)
				b.ReportMetric(row.FinalC, "final-degC-"+d)
				b.ReportMetric(float64(row.Transitions), "freqchanges-"+d)
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: performance and power of BT
// under CPUSPEED vs tDVFS across fan capabilities.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table1(experiment.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, daemon := range []string{"CPUSPEED", "tDVFS"} {
				for _, cap := range []float64{75, 50, 25} {
					cell := r.Cell(daemon, cap)
					suffix := daemon + itoa(int(cap))
					b.ReportMetric(float64(cell.FreqChanges), "chg-"+suffix)
					b.ReportMetric(cell.ExecS, "s-"+suffix)
					b.ReportMetric(cell.AvgPowerW, "W-"+suffix)
				}
			}
		}
	}
}

// BenchmarkFig10Hybrid regenerates Figure 10: hybrid fan+DVFS control
// with one Pp on both knobs. Paper: smaller Pp gives lower temperature
// and a later tDVFS trigger with a small performance spread.
func BenchmarkFig10Hybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig10(experiment.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pp := range []int{75, 50, 25} {
				row := r.Row(pp)
				b.ReportMetric(row.AvgTempC, "degC-pp"+itoa(pp))
				b.ReportMetric(row.TriggeredS, "trigger-s-pp"+itoa(pp))
				b.ReportMetric(row.ExecS, "exec-s-pp"+itoa(pp))
			}
			b.ReportMetric(r.PerfSpreadPct(), "perf-spread-pct")
		}
	}
}

// BenchmarkExtFanFailure runs the fan-failure extension: a seized fan
// under cpu-burn with and without tDVFS. The rescue avoids the hardware
// trip point entirely.
func BenchmarkExtFanFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.FanFailure(experiment.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, cfg := range []string{"unprotected", "tDVFS"} {
				row := r.Row(cfg)
				b.ReportMetric(float64(row.Emergencies), "emerg-"+cfg)
				b.ReportMetric(row.PeakC, "peak-degC-"+cfg)
			}
		}
	}
}

// BenchmarkExtScaling runs the future-work scaling study: the unified
// controller on clusters of 2..16 nodes.
func BenchmarkExtScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Scaling(experiment.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				b.ReportMetric(row.OverheadPct, "overhead-pct-n"+itoa(row.Nodes))
			}
		}
	}
}

// BenchmarkExtRackStudy runs the rack-recirculation extension: fixed
// equal fan duty vs per-node unified control on a vertically coupled
// rack.
func BenchmarkExtRackStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RackStudy(experiment.Seed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Fixed[3].DieC, "fixed-top-degC")
			b.ReportMetric(r.Unified[3].DieC, "unified-top-degC")
			b.ReportMetric(r.Unified[3].FanDuty-r.Unified[0].FanDuty, "duty-compensation")
		}
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out ---

// benchFanRun runs cpu-burn under a controller with the given window
// configuration and returns steady temperature and mode-change count.
func benchFanRun(b *testing.B, win window.Config, useL2 bool) (steadyC float64, moves uint64) {
	b.Helper()
	n, err := node.New(node.DefaultConfig("ablate", 17))
	if err != nil {
		b.Fatal(err)
	}
	n.Settle(0)
	cfg := core.DefaultConfig(50)
	cfg.Window = win
	if !useL2 {
		// Degenerate level two: with a 2-deep FIFO of adjacent rounds,
		// Δt_L2 barely differs from Δt_L1 — effectively L1-only.
		cfg.Window.L2Size = 2
	}
	ctl, err := core.NewController(cfg,
		core.SysfsTemp(n.FS, n.Hwmon.TempInput),
		core.ActuatorBinding{Actuator: core.NewFanActuator(
			&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)})
	if err != nil {
		b.Fatal(err)
	}
	n.SetGenerator(workload.NewCPUBurn(nil))
	for i := 0; i < 1200; i++ {
		n.Step(250 * time.Millisecond)
		ctl.OnStep(n.Elapsed())
	}
	return n.TrueDieC(), ctl.Moves(0)
}

// BenchmarkAblateL1WindowSize sweeps the level-one window size. The
// paper found 4 entries enough to capture sudden change while
// nullifying jitter; smaller windows chase noise (more mode changes),
// larger ones react late.
func BenchmarkAblateL1WindowSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, l1 := range []int{2, 4, 8} {
			steady, moves := benchFanRun(b, window.Config{L1Size: l1, L2Size: 5}, true)
			if i == 0 {
				b.ReportMetric(steady, "degC-L1."+itoa(l1))
				b.ReportMetric(float64(moves), "moves-L1."+itoa(l1))
			}
		}
	}
}

// BenchmarkAblateL2Depth compares the full two-level window against an
// effectively L1-only controller: without the long horizon, gradual
// drift goes untracked until it accumulates into sudden-scale changes.
func BenchmarkAblateL2Depth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, l2 := range []int{2, 5, 10} {
			steady, moves := benchFanRun(b, window.Config{L1Size: 4, L2Size: l2}, true)
			if i == 0 {
				b.ReportMetric(steady, "degC-L2."+itoa(l2))
				b.ReportMetric(float64(moves), "moves-L2."+itoa(l2))
			}
		}
	}
}

// BenchmarkAblateArrayBound sweeps N, the control-array bound, for the
// DVFS actuator (5 physical modes). N above the mode count buys index
// resolution; the paper allows N ≥ physical modes.
func BenchmarkAblateArrayBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{5, 10, 20} {
			arr, err := ctlarray.New(n, 5, 50)
			if err != nil {
				b.Fatal(err)
			}
			distinct := 0
			prev := -1
			for c := 0; c < arr.Len(); c++ {
				if arr.Mode(c) != prev {
					distinct++
					prev = arr.Mode(c)
				}
			}
			if i == 0 {
				b.ReportMetric(float64(distinct), "distinct-N"+itoa(n))
			}
		}
	}
}

// BenchmarkAblatePpSweep quantifies the policy knob end to end: steady
// temperature and fan duty across the whole Pp range on cpu-burn.
func BenchmarkAblatePpSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pp := range []int{1, 25, 50, 75, 100} {
			n, err := node.New(node.DefaultConfig("ppsweep", 23))
			if err != nil {
				b.Fatal(err)
			}
			n.Settle(0)
			ctl, err := core.NewController(core.DefaultConfig(pp),
				core.SysfsTemp(n.FS, n.Hwmon.TempInput),
				core.ActuatorBinding{Actuator: core.NewFanActuator(
					&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)})
			if err != nil {
				b.Fatal(err)
			}
			n.SetGenerator(workload.NewCPUBurn(nil))
			for s := 0; s < 1200; s++ {
				n.Step(250 * time.Millisecond)
				ctl.OnStep(n.Elapsed())
			}
			if i == 0 {
				b.ReportMetric(n.TrueDieC(), "degC-pp"+itoa(pp))
				b.ReportMetric(n.Fan.Duty(), "duty-pp"+itoa(pp))
			}
		}
	}
}

// BenchmarkAblateVsPID pits the paper's window/array controller against
// a competently tuned textbook PID loop on the same plant and workload
// sequence (cpu-burn, then jitter). The PID regulates temperature as
// well or better at steady state — the paper's controller earns its
// keep on actuator churn under jitter and on having a policy knob at
// all.
func BenchmarkAblateVsPID(b *testing.B) {
	run := func(usePID bool) (steadyC, jitterSwing float64) {
		n, err := node.New(node.DefaultConfig("vspid", 61))
		if err != nil {
			b.Fatal(err)
		}
		n.Settle(0)
		var step func(time.Duration)
		if usePID {
			p, err := baseline.NewPIDFan(baseline.DefaultPIDFanConfig(),
				core.SysfsTemp(n.FS, n.Hwmon.TempInput),
				&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon})
			if err != nil {
				b.Fatal(err)
			}
			step = p.OnStep
		} else {
			c, err := core.NewController(core.DefaultConfig(50),
				core.SysfsTemp(n.FS, n.Hwmon.TempInput),
				core.ActuatorBinding{Actuator: core.NewFanActuator(
					&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)})
			if err != nil {
				b.Fatal(err)
			}
			step = c.OnStep
		}
		dt := 250 * time.Millisecond
		n.SetGenerator(workload.NewCPUBurn(nil))
		for i := 0; i < 1920; i++ { // 8 min of cpu-burn
			n.Step(dt)
			step(n.Elapsed())
		}
		steadyC = n.TrueDieC()
		n.SetGenerator(workload.Jitter{Low: 0.2, High: 0.9, Period: time.Second})
		lo, hi := 1e9, -1e9
		for i := 0; i < 1440; i++ { // 6 min of jitter
			n.Step(dt)
			step(n.Elapsed())
			if i > 480 {
				if d := n.Fan.Duty(); d < lo {
					lo = d
				}
				if d := n.Fan.Duty(); d > hi {
					hi = d
				}
			}
		}
		return steadyC, hi - lo
	}
	for i := 0; i < b.N; i++ {
		ps, pj := run(true)
		ws, wj := run(false)
		if i == 0 {
			b.ReportMetric(ps, "pid-steady-degC")
			b.ReportMetric(ws, "window-steady-degC")
			b.ReportMetric(pj, "pid-jitter-swing")
			b.ReportMetric(wj, "window-jitter-swing")
		}
	}
}

// BenchmarkNodeStepThroughput measures raw simulation speed: node model
// steps per second (the substrate's hot loop).
func BenchmarkNodeStepThroughput(b *testing.B) {
	n, err := node.New(node.DefaultConfig("speed", 29))
	if err != nil {
		b.Fatal(err)
	}
	n.SetGenerator(workload.Constant(0.8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(50 * time.Millisecond)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
